// Generic dataflow over CFGs: a direction-agnostic worklist solver
// parameterized on the fact lattice, plus the three canned analyses the
// rules share — reaching definitions (which assignments of a local can
// reach a use), escape-lite (which locals leak out of their function),
// and post-dominance by a block set (does every path from here to the
// exit pass through the set — the commitpath rule's core question,
// answered as its contrapositive by blockReaches).
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Direction selects how facts propagate through the graph.
type Direction int

const (
	// Forward propagates entry→exit: a block's input is the merge of its
	// predecessors' outputs.
	Forward Direction = iota
	// Backward propagates exit→entry: a block's input is the merge of
	// its successors' outputs.
	Backward
)

// Problem defines one dataflow analysis over fact type F. Merge must be
// monotone and Transfer a monotone function of its input, or the solver
// may not terminate.
type Problem[F any] interface {
	Direction() Direction
	// Boundary is the fact entering the graph: at Entry for a forward
	// problem, at Exit for a backward one.
	Boundary() F
	// Bottom is the initial fact of every other block, the identity of
	// Merge.
	Bottom() F
	Transfer(b *Block, in F) F
	Merge(a, b F) F
	Equal(a, b F) bool
}

// Facts holds the solver's fixed point: In is the fact at each block's
// propagation entry (block start for forward problems, block end for
// backward ones) and Out the fact after its transfer function.
type Facts[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// Solve runs the worklist algorithm to a fixed point.
func Solve[F any](g *CFG, p Problem[F]) Facts[F] {
	f := Facts[F]{In: map[*Block]F{}, Out: map[*Block]F{}}
	if g == nil {
		return f
	}
	boundary := g.Entry
	next := func(b *Block) []*Block { return b.Succs }
	prev := func(b *Block) []*Block { return b.Preds }
	if p.Direction() == Backward {
		boundary = g.Exit
		next, prev = prev, next
	}
	for _, b := range g.Blocks {
		f.In[b] = p.Bottom()
		f.Out[b] = p.Transfer(b, f.In[b])
	}
	if boundary != nil {
		f.In[boundary] = p.Boundary()
		f.Out[boundary] = p.Transfer(boundary, f.In[boundary])
	}
	queue := append([]*Block(nil), g.Blocks...)
	inQueue := map[*Block]bool{}
	for _, b := range queue {
		inQueue[b] = true
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false
		in := p.Bottom()
		if b == boundary {
			in = p.Boundary()
		}
		for _, q := range prev(b) {
			in = p.Merge(in, f.Out[q])
		}
		out := p.Transfer(b, in)
		f.In[b] = in
		if p.Equal(out, f.Out[b]) {
			continue
		}
		f.Out[b] = out
		for _, s := range next(b) {
			if !inQueue[s] {
				inQueue[s] = true
				queue = append(queue, s)
			}
		}
	}
	return f
}

// BitSet is a fixed-capacity bit vector, the fact representation of the
// set-based analyses.
type BitSet []uint64

func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

func (s BitSet) Set(i int)      { s[i/64] |= 1 << (i % 64) }
func (s BitSet) Clear(i int)    { s[i/64] &^= 1 << (i % 64) }
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }

func (s BitSet) Clone() BitSet {
	out := make(BitSet, len(s))
	copy(out, s)
	return out
}

func (s BitSet) Union(t BitSet) BitSet {
	out := s.Clone()
	for i := range t {
		out[i] |= t[i]
	}
	return out
}

func (s BitSet) Equal(t BitSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// DefSite is one definition of a function-local variable: an
// assignment, a declaration with value, a range binding, or a
// parameter (Node is then the *ast.Field).
type DefSite struct {
	Var *types.Var
	// Node is the defining statement or field.
	Node ast.Node
	// Rhs is the assigned expression when the definition has a single
	// resolvable source (x := e, x = e), nil otherwise.
	Rhs ast.Expr
}

// ReachingDefs is the solved reaching-definitions problem of one
// function: for every block, which definition sites may still be live
// at its entry.
type ReachingDefs struct {
	Sites []DefSite
	facts Facts[BitSet]
	// sitesOf groups site indices by variable, for the kill sets and
	// per-variable queries.
	sitesOf map[*types.Var][]int
	gen     map[*Block]BitSet
	kill    map[*Block]BitSet
}

func (p *ReachingDefs) Direction() Direction { return Forward }
func (p *ReachingDefs) Boundary() BitSet {
	// Parameters and receivers are defined at entry.
	b := NewBitSet(len(p.Sites))
	for i, s := range p.Sites {
		if _, ok := s.Node.(*ast.Field); ok {
			b.Set(i)
		}
	}
	return b
}
func (p *ReachingDefs) Bottom() BitSet          { return NewBitSet(len(p.Sites)) }
func (p *ReachingDefs) Merge(a, b BitSet) BitSet { return a.Union(b) }
func (p *ReachingDefs) Equal(a, b BitSet) bool   { return a.Equal(b) }
func (p *ReachingDefs) Transfer(b *Block, in BitSet) BitSet {
	out := in.Clone()
	if k := p.kill[b]; k != nil {
		for i := range out {
			out[i] &^= k[i]
		}
	}
	if g := p.gen[b]; g != nil {
		for i := range out {
			out[i] |= g[i]
		}
	}
	return out
}

// SolveReachingDefs collects the definition sites of fn's locals and
// solves the forward may-reach problem over g. decl supplies the
// parameter fields (it may be a *ast.FuncDecl or *ast.FuncLit).
func SolveReachingDefs(g *CFG, decl ast.Node, info *types.Info) *ReachingDefs {
	p := &ReachingDefs{sitesOf: map[*types.Var][]int{}, gen: map[*Block]BitSet{}, kill: map[*Block]BitSet{}}
	if g == nil {
		return p
	}
	addSite := func(s DefSite) int {
		idx := len(p.Sites)
		p.Sites = append(p.Sites, s)
		p.sitesOf[s.Var] = append(p.sitesOf[s.Var], idx)
		return idx
	}
	// Parameter and receiver definitions.
	var ftype *ast.FuncType
	switch d := decl.(type) {
	case *ast.FuncDecl:
		ftype = d.Type
		if d.Recv != nil {
			for _, f := range d.Recv.List {
				for _, name := range f.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						addSite(DefSite{Var: v, Node: f})
					}
				}
			}
		}
	case *ast.FuncLit:
		ftype = d.Type
	}
	if ftype != nil && ftype.Params != nil {
		for _, f := range ftype.Params.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					addSite(DefSite{Var: v, Node: f})
				}
			}
		}
	}
	// Definition sites inside blocks, in order; the per-block last def
	// of a variable is the gen, every other site of the variable the kill.
	type blockDef struct {
		b   *Block
		idx int
	}
	var defs []blockDef
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			eachDef(n, info, func(v *types.Var, node ast.Node, rhs ast.Expr) {
				defs = append(defs, blockDef{b, addSite(DefSite{Var: v, Node: node, Rhs: rhs})})
			})
		}
	}
	n := len(p.Sites)
	for _, d := range defs {
		if p.gen[d.b] == nil {
			p.gen[d.b] = NewBitSet(n)
			p.kill[d.b] = NewBitSet(n)
		}
	}
	for _, d := range defs {
		site := p.Sites[d.idx]
		gen, kill := p.gen[d.b], p.kill[d.b]
		// A later def in the same block kills the earlier one: clear all
		// previously generated sites of this var before setting ours.
		for _, other := range p.sitesOf[site.Var] {
			if other != d.idx {
				gen.Clear(other)
				kill.Set(other)
			}
		}
		gen.Set(d.idx)
	}
	p.facts = Solve[BitSet](g, p)
	return p
}

// DefsOf returns the definition sites of v that may reach the entry of
// block b.
func (p *ReachingDefs) DefsOf(b *Block, v *types.Var) []DefSite {
	in := p.facts.In[b]
	if in == nil {
		return nil
	}
	var out []DefSite
	for _, idx := range p.sitesOf[v] {
		if in.Has(idx) {
			out = append(out, p.Sites[idx])
		}
	}
	return out
}

// AnyDef reports whether any definition site of v anywhere in the
// function satisfies pred — the flow-insensitive projection, for rules
// that only need "was v ever bound to such a value".
func (p *ReachingDefs) AnyDef(v *types.Var, pred func(DefSite) bool) bool {
	for _, idx := range p.sitesOf[v] {
		if pred(p.Sites[idx]) {
			return true
		}
	}
	return false
}

// eachDef reports the local-variable definitions a statement performs.
// Package-level variables are excluded: reaching definitions is a
// per-function analysis, and the rules treat globals through their own
// lenses (mutglobal, atomicguard).
func eachDef(n ast.Node, info *types.Info, f func(v *types.Var, node ast.Node, rhs ast.Expr)) {
	local := func(id *ast.Ident) *types.Var {
		var obj types.Object
		if d := info.Defs[id]; d != nil {
			obj = d
		} else if u := info.Uses[id]; u != nil {
			obj = u
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() || v.IsField() {
			return nil
		}
		return v
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v := local(id)
			if v == nil {
				continue
			}
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			}
			f(v, s, rhs)
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
			if v := local(id); v != nil {
				f(v, s, nil)
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v := local(name)
				if v == nil {
					continue
				}
				var rhs ast.Expr
				if len(vs.Values) == len(vs.Names) {
					rhs = vs.Values[i]
				}
				f(v, s, rhs)
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e == nil {
				continue
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if v := local(id); v != nil {
					f(v, s, nil)
				}
			}
		}
	}
}

// EscapeLite computes, per function-local variable, whether its value
// may leave the function: returned, passed as a call argument, sent on
// a channel, assigned through a pointer/field/index/global, captured by
// a nested function literal, or having its address taken in a non-call
// position. It is an over-approximation by a plain AST walk — precise
// enough for "does this goroutine handle reach the caller" and "does
// this pointer to a tuning global flow out", the two questions the
// rules ask.
func EscapeLite(body *ast.BlockStmt, info *types.Info) map[*types.Var]bool {
	return escapeWalk(body, info, nil)
}

// escapeWalk is EscapeLite with a skip predicate: subtrees for which
// skip returns true are not walked at all. goroleak uses it to exclude
// go statements — state referenced only by the spawned goroutine itself
// never reaches the caller, so it must not count as an escape.
func escapeWalk(body *ast.BlockStmt, info *types.Info, skip func(ast.Node) bool) map[*types.Var]bool {
	escaped := map[*types.Var]bool{}
	if body == nil {
		return escaped
	}
	localOf := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() || v.IsField() {
			return nil
		}
		return v
	}
	mark := func(e ast.Expr) {
		if v := localOf(e); v != nil {
			escaped[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if skip != nil && n != nil && skip(n) {
			return false
		}
		switch nn := n.(type) {
		case *ast.FuncLit:
			// Everything a literal references from the enclosing scope is
			// captured: any identifier it uses that was declared before
			// the literal itself counts as escaped.
			ast.Inspect(nn.Body, func(c ast.Node) bool {
				if id, ok := c.(*ast.Ident); ok {
					if v := localOf(id); v != nil && v.Pos() < nn.Pos() {
						escaped[v] = true
					}
				}
				return true
			})
			return false
		case *ast.ReturnStmt:
			for _, r := range nn.Results {
				mark(r)
			}
		case *ast.CallExpr:
			for _, a := range nn.Args {
				mark(a)
			}
		case *ast.SendStmt:
			mark(nn.Value)
		case *ast.UnaryExpr:
			if nn.Op == token.AND {
				mark(nn.X)
			}
		case *ast.AssignStmt:
			// x.f = v, *p = v, m[k] = v, and assignments to globals all
			// let the RHS out; plain local-to-local stays in.
			for i, lhs := range nn.Lhs {
				if i >= len(nn.Rhs) {
					break
				}
				if localOf(lhs) != nil {
					continue
				}
				if _, ok := ast.Unparen(lhs).(*ast.Ident); ok && info.Defs[ast.Unparen(lhs).(*ast.Ident)] != nil {
					continue // := of a new local
				}
				mark(nn.Rhs[i])
			}
		case *ast.CompositeLit:
			for _, e := range nn.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					mark(kv.Value)
				} else {
					mark(e)
				}
			}
		}
		return true
	})
	return escaped
}

// PostDominates reports whether every path from block b to the exit
// passes through a block satisfying the dom predicate (b itself is not
// tested). It is the set-generalized post-dominance query, answered by
// its contrapositive: b is post-dominated by the set exactly when the
// exit is unreachable while avoiding it.
func PostDominates(g *CFG, b *Block, dom func(*Block) bool) bool {
	if g == nil || g.Exit == nil {
		return false
	}
	var starts []*Block
	for _, s := range b.Succs {
		if !dom(s) {
			starts = append(starts, s)
		}
	}
	if len(starts) == 0 {
		return true
	}
	return !blockReaches(starts, g.Exit, dom)
}
