package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CtxPoll enforces the pipeline's cancellation invariant: every loop
// that can block or iterate unboundedly inside a stage implementation
// or the exec scheduler must reach a cancellation poll on every path
// through the loop. PR 3 threaded cooperative cancellation through the
// detector, DFS, and FFT loops, and PR 5 centralized it on the exec
// scheduler's Poll/Tick schedule; a loop with a poll-free cycle undoes
// that work — a cancelled mine keeps burning CPU until the loop happens
// to finish.
//
// Scope. Loops lexically inside (a) methods of types implementing a
// package's unexported `stage` interface (the pipeline seam, shared
// with the stagestate rule) and the function literals nested in them,
// and (b) any function of a package whose import path ends in
// "internal/exec".
//
// A loop needs metering when its body performs work that can block or
// grow with the input: a channel operation or select, a go statement, a
// nested loop, a `for {}` without condition, or any call that is not a
// builtin, a conversion, or a call into the polling machinery itself.
// Loops over plain arithmetic (no calls, no channels) are exempt.
//
// A poll is a call to a method named Poll or Tick (the exec scheduler's
// schedule — matching is by name so fixture packages need not import
// the real scheduler), a context.Context Err call, or a receive from a
// context.Context Done channel. Polls count transitively: a call to a
// function whose body (transitively) polls is itself a poll, so a loop
// driving sched.Run or conv.LagMatchCountsBatchedCancel is metered even
// though the literal Poll sits in the callee. The check is a dataflow
// question on the CFG: the loop fails when a cycle through its header
// avoids every polling block.
type CtxPoll struct{}

func (CtxPoll) Name() string { return "ctxpoll" }
func (CtxPoll) Doc() string {
	return "require a cancellation poll on every path through blocking/unbounded loops in stage and scheduler code"
}

func (CtxPoll) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	mayPoll := mayPollFuncs(m)

	type finding struct {
		pos   token.Pos
		where string
	}
	var finds []finding
	for _, fi := range m.Functions() {
		if !ctxPollInScope(fi) {
			continue
		}
		info := fi.Pkg.Info
		isPollBlock := func(b *Block) bool { return blockPolls(b, info, mayPoll) }
		for _, loop := range fi.CFG.Loops {
			if !loopNeedsMetering(fi.CFG, loop, info, mayPoll) {
				continue
			}
			if loopMetered(loop, isPollBlock) {
				continue
			}
			finds = append(finds, finding{loop.Stmt.Pos(), fi.Name()})
		}
	}
	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		report(f.pos, "loop in %s can block or iterate unboundedly on a poll-free path; call the scheduler's Poll/Tick or check ctx.Err on every iteration", f.where)
	}
}

// ctxPollInScope reports whether the function's loops fall under the
// cancellation invariant.
func ctxPollInScope(fi *FuncInfo) bool {
	if strings.HasSuffix(fi.Pkg.Path, "internal/exec") {
		return true
	}
	iface := stageInterface(fi.Pkg)
	if iface == nil || fi.Decl == nil || fi.Decl.Recv == nil {
		return false
	}
	obj, ok := fi.Pkg.Info.Defs[fi.Decl.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv().Type()
	return types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface)
}

// loopMetered reports whether every cycle through the loop header
// passes a polling block.
func loopMetered(loop *Loop, isPoll func(*Block) bool) bool {
	if isPoll(loop.Head) {
		return true
	}
	// A poll-free cycle exists when the header can re-reach itself while
	// staying inside the loop and avoiding polling blocks.
	avoid := func(b *Block) bool { return !loop.Blocks[b] || isPoll(b) }
	var starts []*Block
	for _, s := range loop.Head.Succs {
		if loop.Blocks[s] && !isPoll(s) {
			starts = append(starts, s)
		}
	}
	if len(starts) == 0 {
		return true
	}
	return !blockReaches(starts, loop.Head, avoid)
}

// loopNeedsMetering reports whether the loop's body can block or
// iterate unboundedly.
func loopNeedsMetering(g *CFG, loop *Loop, info *types.Info, mayPoll map[*types.Func]bool) bool {
	if fs, ok := loop.Stmt.(*ast.ForStmt); ok && fs.Cond == nil {
		return true // for {} — unbounded by construction
	}
	// A nested loop inside this one is work.
	for _, other := range g.Loops {
		if other != loop && other.Head != nil && loop.Blocks[other.Head] {
			return true
		}
	}
	work := false
	for b := range loop.Blocks {
		if work {
			break
		}
		inspectShallow(b.Nodes, func(n ast.Node) bool {
			if work {
				return false
			}
			switch nn := n.(type) {
			case *ast.SendStmt, *ast.SelectStmt, *ast.GoStmt:
				work = true
				return false
			case *ast.UnaryExpr:
				if nn.Op == token.ARROW {
					work = true
					return false
				}
			case *ast.RangeStmt:
				// A range over a channel blocks on every iteration.
				if info != nil {
					if tv, ok := info.Types[nn.X]; ok {
						if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
							work = true
							return false
						}
					}
				}
			case *ast.CallExpr:
				if callIsWork(nn, info, mayPoll) {
					work = true
					return false
				}
			}
			return true
		})
	}
	return work
}

// callIsWork reports whether the call can take real time: anything but
// builtins, conversions, and calls into the polling machinery.
func callIsWork(call *ast.CallExpr, info *types.Info, mayPoll map[*types.Func]bool) bool {
	if info != nil {
		if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
			return false // conversion
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return false
			}
		}
	}
	if isPollCall(call, info, mayPoll) {
		return false
	}
	return true
}

// isPollCall reports whether the call checks cancellation: a Poll/Tick
// method (name-based — the scheduler convention), ctx.Err / a receive
// of ctx.Done on a context.Context, or a call to a function whose body
// transitively polls.
func isPollCall(call *ast.CallExpr, info *types.Info, mayPoll map[*types.Func]bool) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Poll", "Tick":
			return true
		case "Err", "Done":
			if info != nil {
				if tv, ok := info.Types[sel.X]; ok && namedFrom(tv.Type, "context", "Context") {
					return true
				}
			}
		}
	}
	if info != nil && mayPoll != nil {
		if fn, ok := calleeObject(info, call).(*types.Func); ok && mayPoll[fn] {
			return true
		}
	}
	return false
}

// blockPolls reports whether the block contains a polling node.
func blockPolls(b *Block, info *types.Info, mayPoll map[*types.Func]bool) bool {
	polls := false
	inspectShallow(b.Nodes, func(n ast.Node) bool {
		if polls {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isPollCall(call, info, mayPoll) {
			polls = true
			return false
		}
		return true
	})
	return polls
}

// mayPollFuncs computes the module's transitive may-poll set: a
// declared function polls when its body contains a primitive poll, or
// calls (directly or through any chain of resolvable calls) a function
// that does. Calls through function values and interface methods are
// not resolved — the set under-approximates, so a loop is never excused
// by an unprovable poll.
func mayPollFuncs(m *Module) map[*types.Func]bool {
	type node struct {
		primitive bool
		callers   []*types.Func
	}
	nodes := map[*types.Func]*node{}
	get := func(fn *types.Func) *node {
		n := nodes[fn]
		if n == nil {
			n = &node{}
			nodes[fn] = n
		}
		return n
	}
	for _, pkg := range m.Packages {
		info := pkg.Info
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			self, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				return
			}
			sn := get(self)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPollCall(call, info, nil) {
					sn.primitive = true
					return true
				}
				if callee, ok := calleeObject(info, call).(*types.Func); ok {
					get(callee).callers = append(get(callee).callers, self)
				}
				return true
			})
		})
	}
	mayPoll := map[*types.Func]bool{}
	var queue []*types.Func
	for fn, n := range nodes {
		if n.primitive {
			mayPoll[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range nodes[fn].callers {
			if !mayPoll[caller] {
				mayPoll[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return mayPoll
}
