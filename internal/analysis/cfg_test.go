package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFromBody parses "package p\nfunc f(...) { body }" and returns
// the CFG of f, failing the test on parse errors.
func buildFromBody(t *testing.T, body string) *CFG {
	t.Helper()
	g := parseAndBuild("func f(a, b int, ch chan int) int {\n" + body + "\n}")
	if g == nil {
		t.Fatalf("no CFG built for body:\n%s", body)
	}
	return g
}

// parseAndBuild wraps one function declaration in a package clause,
// parses it, and builds the CFG; nil when the source does not parse as
// a single function (the fuzz target's tolerant entry point).
func parseAndBuild(fn string) *CFG {
	src := "package p\n\n" + fn
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return buildCFG(fd.Body)
		}
	}
	return nil
}

// checkCFG asserts the structural invariants every CFG must satisfy:
// symmetric succ/pred edges, every non-exit block reachable from entry
// (prune's contract), loop heads inside their own block sets, and no
// self-duplicated edges.
func checkCFG(t *testing.T, g *CFG) {
	t.Helper()
	index := map[*Block]bool{}
	for _, b := range g.Blocks {
		index[b] = true
	}
	if !index[g.Entry] {
		t.Fatal("entry block not in Blocks")
	}
	if !index[g.Exit] {
		t.Fatal("exit block not in Blocks")
	}
	for _, b := range g.Blocks {
		seen := map[*Block]bool{}
		for _, s := range b.Succs {
			if !index[s] {
				t.Errorf("block %d has pruned successor", b.Index)
			}
			if seen[s] {
				t.Errorf("block %d has duplicate successor %d", b.Index, s.Index)
			}
			seen[s] = true
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d missing from preds", b.Index, s.Index)
			}
		}
	}
	reach := map[*Block]bool{g.Entry: true}
	queue := []*Block{g.Entry}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				queue = append(queue, s)
			}
		}
	}
	for _, b := range g.Blocks {
		if !reach[b] && b != g.Exit {
			t.Errorf("block %d survives prune but is unreachable", b.Index)
		}
	}
	for _, l := range g.Loops {
		if l.Head == nil {
			t.Error("loop without head")
			continue
		}
		if !l.Blocks[l.Head] {
			t.Error("loop head outside its own block set")
		}
		for b := range l.Blocks {
			if !index[b] {
				t.Error("loop set retains pruned block")
			}
		}
	}
}

func TestCFGStraightLine(t *testing.T) {
	g := buildFromBody(t, "a++\nb++\nreturn a + b")
	checkCFG(t, g)
	if len(g.Loops) != 0 {
		t.Errorf("straight-line code grew %d loops", len(g.Loops))
	}
	// Entry holds all three statements and edges to exit.
	if n := len(g.Entry.Nodes); n != 3 {
		t.Errorf("entry has %d nodes, want 3", n)
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Error("straight-line entry should edge only to exit")
	}
}

func TestCFGIfElse(t *testing.T) {
	g := buildFromBody(t, `
if a > b {
	a = 1
} else {
	a = 2
}
return a`)
	checkCFG(t, g)
	// cond block must have two successors (then, else) and the return
	// block two predecessors.
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("if condition has %d successors, want 2", n)
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g := buildFromBody(t, `
if a > b {
	a = 1
}
return a`)
	checkCFG(t, g)
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("else-less if condition has %d successors (then, after), want 2", n)
	}
}

func TestCFGForLoop(t *testing.T) {
	g := buildFromBody(t, `
s := 0
for i := 0; i < a; i++ {
	s += i
}
return s`)
	checkCFG(t, g)
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
	l := g.Loops[0]
	// The after-block (holding the return) must not be in the loop set.
	for b := range l.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				t.Error("return after the loop landed inside the loop set")
			}
		}
	}
	// The header must be re-reachable from its body successors: a cycle.
	var inLoop []*Block
	for _, s := range l.Head.Succs {
		if l.Blocks[s] {
			inLoop = append(inLoop, s)
		}
	}
	if !blockReaches(inLoop, l.Head, func(b *Block) bool { return !l.Blocks[b] }) {
		t.Error("loop has no cycle back to its header")
	}
}

func TestCFGRangeChannel(t *testing.T) {
	g := buildFromBody(t, `
s := 0
for v := range ch {
	s += v
}
return s`)
	checkCFG(t, g)
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
	head := g.Loops[0].Head
	if len(head.Nodes) != 1 {
		t.Fatalf("range head has %d nodes, want the RangeStmt only", len(head.Nodes))
	}
	if _, ok := head.Nodes[0].(*ast.RangeStmt); !ok {
		t.Error("range head node is not the RangeStmt")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	g := buildFromBody(t, `
for i := 0; i < a; i++ {
	if i == 3 {
		break
	}
	if i == 1 {
		continue
	}
	b++
}
return b`)
	checkCFG(t, g)
	l := g.Loops[0]
	// break must edge out of the loop set; continue must stay inside.
	brkOut, contIn := false, false
	for b := range l.Blocks {
		for _, n := range b.Nodes {
			br, ok := n.(*ast.BranchStmt)
			if !ok {
				continue
			}
			for _, s := range b.Succs {
				if br.Tok == token.BREAK && !l.Blocks[s] {
					brkOut = true
				}
				if br.Tok == token.CONTINUE && l.Blocks[s] {
					contIn = true
				}
			}
		}
	}
	if !brkOut {
		t.Error("break does not leave the loop set")
	}
	if !contIn {
		t.Error("continue leaves the loop set")
	}
}

func TestCFGTerminalCalls(t *testing.T) {
	g := buildFromBody(t, `
if a == 0 {
	panic("zero")
}
return a`)
	checkCFG(t, g)
	// The panic block's only successor is exit.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok && isTerminalCall(call) {
				if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
					t.Error("terminal call block does not edge straight to exit")
				}
			}
		}
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildFromBody(t, `
switch a {
case 0:
	b = 1
	fallthrough
case 1:
	b = 2
default:
	b = 3
}
return b`)
	checkCFG(t, g)
	// The fallthrough must produce an edge from case-0's block into
	// case-1's block: some block containing "b = 1" edges to one
	// containing "b = 2".
	found := false
	for _, b := range g.Blocks {
		if !blockAssigns(b, "1") {
			continue
		}
		for _, s := range b.Succs {
			if blockAssigns(s, "2") {
				found = true
			}
		}
	}
	if !found {
		t.Error("fallthrough edge from case 0 to case 1 missing")
	}
}

// blockAssigns reports whether the block contains `b = <lit>`.
func blockAssigns(b *Block, lit string) bool {
	for _, n := range b.Nodes {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			continue
		}
		if bl, ok := as.Rhs[0].(*ast.BasicLit); ok && bl.Value == lit {
			return true
		}
	}
	return false
}

func TestCFGSelectEmpty(t *testing.T) {
	g := buildFromBody(t, `
select {}
`)
	checkCFG(t, g)
	// select{} blocks forever: the exit must be unreachable from entry.
	if blockReaches([]*Block{g.Entry}, g.Exit, nil) {
		t.Error("exit reachable past select{}")
	}
}

func TestCFGGotoForward(t *testing.T) {
	g := buildFromBody(t, `
if a > 0 {
	goto done
}
b = 2
done:
return b`)
	checkCFG(t, g)
	// Both the goto path and the fallthrough path must reach the
	// labeled return block: it has at least two predecessors.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				if len(b.Preds) < 2 {
					t.Errorf("labeled return has %d preds, want >= 2", len(b.Preds))
				}
			}
		}
	}
}

func TestCFGPruneUnreachable(t *testing.T) {
	g := buildFromBody(t, `
return a
b = 9`)
	checkCFG(t, g)
	for _, blk := range g.Blocks {
		if blockAssigns(blk, "9") {
			t.Error("statically unreachable statement survived prune")
		}
	}
}

func TestCFGDefersRecorded(t *testing.T) {
	g := buildFromBody(t, `
defer println(a)
defer println(b)
return a`)
	checkCFG(t, g)
	if len(g.Defers) != 2 {
		t.Fatalf("recorded %d defers, want 2", len(g.Defers))
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildFromBody(t, `
outer:
for i := 0; i < a; i++ {
	for j := 0; j < b; j++ {
		if i*j > 10 {
			break outer
		}
	}
}
return a`)
	checkCFG(t, g)
	if len(g.Loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(g.Loops))
	}
	// The labeled break must edge outside BOTH loop sets.
	var outerLoop *Loop
	for _, l := range g.Loops {
		if _, ok := l.Stmt.(*ast.ForStmt); ok && outerLoop == nil {
			outerLoop = l
		}
	}
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.BREAK && br.Label != nil {
				for _, s := range b.Succs {
					out := true
					for _, l := range g.Loops {
						if l.Blocks[s] {
							out = false
						}
					}
					if out {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Error("labeled break does not leave both loop sets")
	}
}
