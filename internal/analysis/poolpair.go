package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPair enforces the zero-alloc invariant from the planned FFT
// engine: every sync.Pool.Get must be matched by a Put in the same
// function, either via defer or on the ordinary return path. The rule
// understands the project's borrow/return wrappers through annotations:
// a function marked //opvet:acquire counts as a Get at its call sites
// (and its own body is exempt — it intentionally returns the borrowed
// buffer to the caller), and one marked //opvet:release counts as a
// Put.
//
// The matching is a count heuristic, not a data-flow analysis: a
// function is flagged when it performs more acquires than releases
// (deferred releases included). That catches the realistic failure —
// an early return or a forgotten release on a new path — without a CFG.
type PoolPair struct{}

func (PoolPair) Name() string { return "poolpair" }
func (PoolPair) Doc() string {
	return "flag sync.Pool.Get (or //opvet:acquire calls) without a matching Put/release in the same function"
}

func (PoolPair) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	acquireFns, releaseFns := annotatedFuncs(m)
	for _, pkg := range m.Packages {
		info := pkg.Info
		eachFunc(pkg, func(_ *ast.File, fn *ast.FuncDecl) {
			if funcHasAnnotation(fn, "acquire") {
				return // returns the borrowed buffer by contract
			}
			var acquires []token.Pos
			releases := 0
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch classifyPoolCall(info, call, acquireFns, releaseFns) {
				case poolAcquire:
					acquires = append(acquires, call.Pos())
				case poolRelease:
					releases++
				}
				return true
			})
			if len(acquires) > releases {
				report(acquires[releases], "%s acquires %d pooled buffer(s) but releases %d; add the missing Put/release (or annotate //opvet:acquire if the buffer is returned)",
					fn.Name.Name, len(acquires), releases)
			}
		})
	}
}

type poolCallKind int

const (
	poolNone poolCallKind = iota
	poolAcquire
	poolRelease
)

// classifyPoolCall decides whether a call acquires or releases a pooled
// buffer: a sync.Pool Get/Put method call, or a call to a function
// carrying the //opvet:acquire or //opvet:release annotation.
func classifyPoolCall(info *types.Info, call *ast.CallExpr, acquireFns, releaseFns map[types.Object]bool) poolCallKind {
	obj := calleeObject(info, call)
	if obj == nil {
		return poolNone
	}
	if acquireFns[obj] {
		return poolAcquire
	}
	if releaseFns[obj] {
		return poolRelease
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return poolNone
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !namedFrom(sig.Recv().Type(), "sync", "Pool") {
		return poolNone
	}
	switch fn.Name() {
	case "Get":
		return poolAcquire
	case "Put":
		return poolRelease
	}
	return poolNone
}

// annotatedFuncs indexes the module's //opvet:acquire and
// //opvet:release function declarations by their types.Object, so call
// sites in any package resolve to them.
func annotatedFuncs(m *Module) (acquire, release map[types.Object]bool) {
	acquire = map[types.Object]bool{}
	release = map[types.Object]bool{}
	for _, pkg := range m.Packages {
		eachFunc(pkg, func(_ *ast.File, fn *ast.FuncDecl) {
			obj := pkg.Info.Defs[fn.Name]
			if obj == nil {
				return
			}
			if funcHasAnnotation(fn, "acquire") {
				acquire[obj] = true
			}
			if funcHasAnnotation(fn, "release") {
				release[obj] = true
			}
		})
	}
	return acquire, release
}
