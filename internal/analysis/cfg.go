// Control-flow graphs. buildCFG lowers one function body into basic
// blocks connected by directed edges, the substrate the flow-sensitive
// rules (ctxpoll, commitpath, goroleak) and the dataflow solver run on.
// The builder is purely syntactic — it needs no type information, which
// keeps it cheap enough to fuzz — and models Go's full statement set:
// if/for/range chains, switch and type-switch with fallthrough, select,
// labeled break/continue/goto, and terminating calls (panic, os.Exit,
// log.Fatal*, runtime.Goexit) which edge straight to the exit block.
//
// Two deliberate simplifications, documented for rule authors:
//
//   - Nested function literals are opaque: their bodies get their own
//     CFGs (Module.Functions builds one per literal) and are never
//     inlined into the enclosing graph, so a rule scanning a block's
//     nodes must skip *ast.FuncLit subtrees (inspectShallow does).
//   - Deferred calls are recorded on CFG.Defers rather than placed in
//     blocks: they run on every path to the exit, and rules that care
//     (commitpath's rollback detection, goroleak's deferred Wait)
//     consult the list directly.
package analysis

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line node sequence with
// edges only at the end. Nodes holds statements and the control
// expressions (if/switch conditions, range operands) evaluated in the
// block, in execution order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Loop is one for or range statement of the function. Blocks is the
// loop body in the natural-loop sense — header, body, and post blocks;
// every cycle of the loop stays inside it — excluding the after-block
// that break and a false condition jump to.
type Loop struct {
	// Stmt is the *ast.ForStmt or *ast.RangeStmt.
	Stmt ast.Stmt
	// Head is the loop header; every iteration passes through it.
	Head *Block
	// Blocks is the set of blocks forming the loop, Head included.
	Blocks map[*Block]bool
}

// CFG is the control-flow graph of one function body. Entry starts the
// body; Exit is the single synthetic sink every return, terminating
// call, and fall-off-the-end path reaches. Unreachable blocks are
// pruned, so every block in Blocks is reachable from Entry except
// possibly Exit (a function that provably never returns).
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Loops  []*Loop
	// Defers lists the deferred calls of the body in source order; they
	// run, in reverse order, on every path that reaches Exit.
	Defers []*ast.CallExpr
}

// buildCFG constructs the graph for one function body; nil body (a
// declaration without implementation) yields nil.
func buildCFG(body *ast.BlockStmt) *CFG {
	if body == nil {
		return nil
	}
	b := &cfgBuilder{
		g:         &CFG{},
		labelBrk:  map[string]*Block{},
		labelCont: map[string]*Block{},
		labelBlk:  map[string]*Block{},
		pendGoto:  map[string][]*Block{},
	}
	b.g.Exit = b.newBlock() // index 0 before reindexing; pruned last
	b.g.Entry = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.jump(b.g.Exit)
	b.prune()
	return b.g
}

type cfgBuilder struct {
	g   *CFG
	cur *Block // nil while the current point is unreachable

	// Innermost-last stacks of unlabeled break/continue targets.
	brkStack  []*Block
	contStack []*Block
	// Labeled targets, function-scoped.
	labelBrk  map[string]*Block
	labelCont map[string]*Block
	labelBlk  map[string]*Block
	pendGoto  map[string][]*Block
	// pendingLabel names the label whose statement is being built next,
	// so the loop/switch/select builders can register break/continue
	// targets for it.
	pendingLabel string
	// fallTarget is the next case's block while building a switch
	// clause, the target of a fallthrough statement.
	fallTarget *Block
	// loops is the stack of loops under construction; newBlock registers
	// each fresh block with all of them.
	loops []*Loop
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	for _, l := range b.loops {
		l.Blocks[blk] = true
	}
	return blk
}

// link adds the edge from→to; a nil from (unreachable source) is a no-op.
func link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump links the current block to target and marks the point after it
// unreachable (return, break, goto all end the block this way).
func (b *cfgBuilder) jump(target *Block) {
	link(b.cur, target)
	b.cur = nil
}

// add appends a node to the current block, reviving a dead point into a
// fresh (statically unreachable, later pruned) block so statements after
// a return still get built — a label inside may make them reachable.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// Any statement other than a labeled one consumes the pending label
	// scope (the label still names its block for goto).
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.pendingLabel = ""
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.pendingLabel = ""
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, nil)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, nil)
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.pendingLabel = ""
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.pendingLabel = ""
		b.add(s)
		b.jump(b.g.Exit)
	case *ast.DeferStmt:
		b.pendingLabel = ""
		b.add(s)
		b.g.Defers = append(b.g.Defers, s.Call)
	case *ast.ExprStmt:
		b.pendingLabel = ""
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminalCall(call) {
			b.jump(b.g.Exit)
		}
	case *ast.EmptyStmt:
		// no node
	default:
		// Assign, Decl, IncDec, Send, Go — straight-line statements.
		b.pendingLabel = ""
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	after := b.newBlock()
	then := b.newBlock()
	link(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	link(b.cur, after)
	if s.Else != nil {
		els := b.newBlock()
		link(cond, els)
		b.cur = els
		b.stmt(s.Else)
		link(b.cur, after)
	} else {
		link(cond, after)
	}
	b.cur = after
}

// pushLoopTargets registers break/continue targets (stack and label maps).
func (b *cfgBuilder) pushLoopTargets(label string, brk, cont *Block) {
	b.brkStack = append(b.brkStack, brk)
	b.contStack = append(b.contStack, cont)
	if label != "" {
		b.labelBrk[label] = brk
		b.labelCont[label] = cont
	}
}

func (b *cfgBuilder) popLoopTargets() {
	b.brkStack = b.brkStack[:len(b.brkStack)-1]
	b.contStack = b.contStack[:len(b.contStack)-1]
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	after := b.newBlock() // outside the loop set: created before the push
	loop := &Loop{Stmt: s, Blocks: map[*Block]bool{}}
	b.g.Loops = append(b.g.Loops, loop)
	b.loops = append(b.loops, loop)

	head := b.newBlock()
	loop.Head = head
	b.jump(head)
	b.cur = head
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		link(head, after)
	}
	var post *Block
	cont := head
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		link(post, head)
		cont = post
	}
	body := b.newBlock()
	link(head, body)
	b.cur = body
	b.pushLoopTargets(label, after, cont)
	b.stmtList(s.Body.List)
	b.popLoopTargets()
	if post != nil {
		link(b.cur, post)
	} else {
		link(b.cur, head)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X) // the ranged operand is evaluated once, before the loop
	after := b.newBlock()
	loop := &Loop{Stmt: s, Blocks: map[*Block]bool{}}
	b.g.Loops = append(b.g.Loops, loop)
	b.loops = append(b.loops, loop)

	head := b.newBlock()
	loop.Head = head
	// The RangeStmt node itself stands for the per-iteration advance and
	// key/value binding.
	head.Nodes = append(head.Nodes, s)
	b.jump(head)
	link(head, after) // the range may be exhausted at any iteration
	body := b.newBlock()
	link(head, body)
	b.cur = body
	b.pushLoopTargets(label, after, head)
	b.stmtList(s.Body.List)
	b.popLoopTargets()
	link(b.cur, head)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

// switchBody builds the clause blocks of a switch or type switch.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string, _ *Block) {
	cond := b.cur
	if cond == nil {
		cond = b.newBlock()
		b.cur = cond
	}
	after := b.newBlock()
	// break inside a switch targets after; continue passes through to the
	// enclosing loop, so only the break stack grows.
	b.brkStack = append(b.brkStack, after)
	if label != "" {
		b.labelBrk[label] = after
	}

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		link(cond, blocks[i])
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		if len(cc.List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		link(cond, after)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		if i+1 < len(clauses) {
			b.fallTarget = blocks[i+1]
		} else {
			b.fallTarget = nil
		}
		b.stmtList(cc.Body)
		b.fallTarget = nil
		link(b.cur, after)
	}
	b.brkStack = b.brkStack[:len(b.brkStack)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	cond := b.cur
	if cond == nil {
		cond = b.newBlock()
		b.cur = cond
	}
	after := b.newBlock()
	b.brkStack = append(b.brkStack, after)
	if label != "" {
		b.labelBrk[label] = after
	}
	any := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		blk := b.newBlock()
		link(cond, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		b.stmtList(cc.Body)
		link(b.cur, after)
	}
	b.brkStack = b.brkStack[:len(b.brkStack)-1]
	if !any {
		// select{} blocks forever: no edge out.
		b.cur = nil
		return
	}
	b.cur = after
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	target := b.newBlock()
	link(b.cur, target)
	b.cur = target
	b.labelBlk[name] = target
	for _, from := range b.pendGoto[name] {
		link(from, target)
	}
	delete(b.pendGoto, name)
	b.pendingLabel = name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		var target *Block
		if s.Label != nil {
			target = b.labelBrk[s.Label.Name]
		} else if len(b.brkStack) > 0 {
			target = b.brkStack[len(b.brkStack)-1]
		}
		if target != nil {
			b.add(s)
			b.jump(target)
		}
	case token.CONTINUE:
		var target *Block
		if s.Label != nil {
			target = b.labelCont[s.Label.Name]
		} else if len(b.contStack) > 0 {
			target = b.contStack[len(b.contStack)-1]
		}
		if target != nil {
			b.add(s)
			b.jump(target)
		}
	case token.GOTO:
		if s.Label == nil {
			return
		}
		b.add(s)
		name := s.Label.Name
		if target, ok := b.labelBlk[name]; ok {
			b.jump(target)
			return
		}
		// Forward goto: resolved when the label's statement is built.
		b.pendGoto[name] = append(b.pendGoto[name], b.cur)
		b.cur = nil
	case token.FALLTHROUGH:
		if b.fallTarget != nil {
			b.add(s)
			b.jump(b.fallTarget)
		}
	}
}

// isTerminalCall reports, by name alone (the builder is type-free),
// whether the call never returns: panic, os.Exit, runtime.Goexit, and
// the log.Fatal family.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}

// prune drops blocks unreachable from Entry (keeping Exit), filters
// their edges and the loop sets, and reindexes.
func (b *cfgBuilder) prune() {
	g := b.g
	reach := map[*Block]bool{g.Entry: true}
	queue := []*Block{g.Entry}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		for _, s := range blk.Succs {
			if !reach[s] {
				reach[s] = true
				queue = append(queue, s)
			}
		}
	}
	var kept []*Block
	for _, blk := range g.Blocks {
		if reach[blk] || blk == g.Exit {
			kept = append(kept, blk)
		}
	}
	for i, blk := range kept {
		blk.Index = i
		blk.Succs = filterBlocks(blk.Succs, reach, g.Exit)
		blk.Preds = filterBlocks(blk.Preds, reach, g.Exit)
	}
	var loops []*Loop
	for _, l := range g.Loops {
		if !reach[l.Head] {
			continue
		}
		for blk := range l.Blocks {
			if !reach[blk] {
				delete(l.Blocks, blk)
			}
		}
		loops = append(loops, l)
	}
	g.Blocks, g.Loops = kept, loops
}

func filterBlocks(list []*Block, reach map[*Block]bool, exit *Block) []*Block {
	var out []*Block
	for _, blk := range list {
		if reach[blk] || blk == exit {
			out = append(out, blk)
		}
	}
	return out
}

// inspectShallow walks the subtrees of a block's nodes the way the
// block executes them: nested function literals are skipped (their
// bodies have their own CFGs and run on their own schedule) and so are
// deferred calls (they run at function exit, not at the defer site).
func inspectShallow(nodes []ast.Node, f func(ast.Node) bool) {
	for _, n := range nodes {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c.(type) {
			case nil:
				return true // post-visit callback; not forwarded
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				return false
			}
			return f(c)
		})
	}
}

// blockReaches reports whether target is reachable from one of the
// start blocks by edges that avoid blocks for which avoid returns true
// (start blocks themselves are not tested against avoid).
func blockReaches(starts []*Block, target *Block, avoid func(*Block) bool) bool {
	seen := map[*Block]bool{}
	queue := append([]*Block(nil), starts...)
	for _, s := range starts {
		seen[s] = true
	}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		if blk == target {
			return true
		}
		for _, s := range blk.Succs {
			if seen[s] || (avoid != nil && avoid(s) && s != target) {
				continue
			}
			seen[s] = true
			queue = append(queue, s)
		}
	}
	return false
}
