// Flow-pass plumbing: the framework side of the CFG substrate. A rule
// stays a whole-module AST walk by implementing only Rule; it opts into
// function-level flow passes by additionally implementing FlowRule, and
// the driver then hands it every function's CFG (declared functions and
// nested literals alike), built once per module and shared across
// rules.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FuncInfo is one analyzable function: a declared function or method,
// or a function literal nested inside one.
type FuncInfo struct {
	// Mod and Pkg locate the function; rules key scopes on Pkg.Path.
	Mod *Module
	Pkg *Package
	// Decl is the enclosing function declaration. For a literal it is
	// the declaration the literal is (transitively) nested in; nil when
	// the literal initializes a package-level variable.
	Decl *ast.FuncDecl
	// Lit is non-nil when the CFG belongs to a function literal.
	Lit *ast.FuncLit
	// CFG is the function's control-flow graph (never nil; bodiless
	// declarations are skipped).
	CFG *CFG
}

// Name renders a human-readable identity for diagnostics.
func (fi *FuncInfo) Name() string {
	switch {
	case fi.Lit != nil && fi.Decl != nil:
		return "function literal in " + fi.Pkg.Types.Name() + "." + fi.Decl.Name.Name
	case fi.Lit != nil:
		return "function literal in " + fi.Pkg.Types.Name()
	default:
		return fi.Pkg.Types.Name() + "." + fi.Decl.Name.Name
	}
}

// Body returns the function's body block.
func (fi *FuncInfo) Body() *ast.BlockStmt {
	if fi.Lit != nil {
		return fi.Lit.Body
	}
	return fi.Decl.Body
}

// FuncNode returns the declaring node (*ast.FuncDecl or *ast.FuncLit),
// the shape SolveReachingDefs takes for parameter discovery.
func (fi *FuncInfo) FuncNode() ast.Node {
	if fi.Lit != nil {
		return fi.Lit
	}
	return fi.Decl
}

// Object resolves the declared *types.Func of the function; nil for
// literals.
func (fi *FuncInfo) Object() *types.Func {
	if fi.Lit != nil || fi.Decl == nil {
		return nil
	}
	fn, _ := fi.Pkg.Info.Defs[fi.Decl.Name].(*types.Func)
	return fn
}

// FlowRule is the opt-in extension of Rule: the driver invokes RunFunc
// once per function in the module, after the rule's whole-module Run
// pass, with the shared CFG. Rules needing cross-function facts (such
// as ctxpoll's interprocedural may-poll set) should instead keep to
// Run and iterate m.Functions() themselves.
type FlowRule interface {
	RunFunc(fn *FuncInfo, report func(pos token.Pos, format string, args ...any))
}

// Functions builds (on first use) and returns the CFGs of every
// function in the module: declared functions and methods first, then
// every function literal, all attributed to their package and
// enclosing declaration. The slice is cached on the module and shared
// by all rules — CFGs must be treated as read-only.
func (m *Module) Functions() []*FuncInfo {
	if m.funcsBuilt {
		return m.funcs
	}
	m.funcsBuilt = true
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				m.funcs = append(m.funcs, &FuncInfo{
					Mod: m, Pkg: pkg, Decl: fn, CFG: buildCFG(fn.Body),
				})
				m.collectLits(pkg, fn, fn.Body)
			}
			// Literals in package-level var initializers.
			for _, decl := range file.Decls {
				if gd, ok := decl.(*ast.GenDecl); ok {
					m.collectLits(pkg, nil, gd)
				}
			}
		}
	}
	return m.funcs
}

// collectLits appends a FuncInfo for every function literal under root
// (literals nested in literals included, each with its own CFG).
func (m *Module) collectLits(pkg *Package, decl *ast.FuncDecl, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
			m.funcs = append(m.funcs, &FuncInfo{
				Mod: m, Pkg: pkg, Decl: decl, Lit: lit, CFG: buildCFG(lit.Body),
			})
		}
		return true
	})
}
