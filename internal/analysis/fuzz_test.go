// Fuzzing for the CFG builder. The builder is deliberately type-free so
// this target can throw arbitrary parseable function bodies at it: the
// contract under fuzz is no panics and structurally sound graphs —
// symmetric edges, reachable-or-pruned blocks, loop sets that contain
// their heads and nothing pruned.
package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func FuzzCFGBuild(f *testing.F) {
	seeds := []string{
		"",
		"return",
		"x := 1\nreturn x",
		"for {}",
		"for i := 0; i < 10; i++ { x += i }",
		"for v := range ch { _ = v }",
		"if a { return 1 } else { return 2 }",
		"switch x {\ncase 1:\n\ty = 1\n\tfallthrough\ncase 2:\n\ty = 2\ndefault:\n\ty = 3\n}",
		"select {}",
		"select {\ncase <-ch:\ncase ch <- 1:\ndefault:\n}",
		"outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}",
		"goto done\nx = 1\ndone:\nreturn",
		"defer f()\ndefer g()\npanic(\"x\")",
		"L:\n\tif a {\n\t\tgoto L\n\t}",
		"go func() { for {} }()",
		"for {\n\tswitch {\n\tcase a:\n\t\tcontinue\n\tdefault:\n\t\tbreak\n\t}\n}",
		"x := 1\nreturn x\nunreachable()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\nfunc f() {\n" + body + "\n}"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip("body does not parse")
		}
		var fd *ast.FuncDecl
		for _, d := range file.Decls {
			if x, ok := d.(*ast.FuncDecl); ok && x.Body != nil {
				fd = x
				break
			}
		}
		if fd == nil {
			t.Skip("no function survived parsing")
		}
		g := buildCFG(fd.Body) // must not panic
		if g == nil {
			t.Fatal("nil CFG for a non-nil body")
		}
		fuzzCheckCFG(t, g)
	})
}

// fuzzCheckCFG is checkCFG without the *testing.T helper conveniences
// that would misattribute failures under the fuzzer; same invariants.
func fuzzCheckCFG(t *testing.T, g *CFG) {
	index := map[*Block]bool{}
	for _, b := range g.Blocks {
		if b == nil {
			t.Fatal("nil block in Blocks")
		}
		index[b] = true
	}
	if !index[g.Entry] || !index[g.Exit] {
		t.Fatal("entry or exit missing from Blocks")
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !index[s] {
				t.Fatalf("block %d keeps a pruned successor", b.Index)
			}
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not mirrored in preds", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !index[p] {
				t.Fatalf("block %d keeps a pruned predecessor", b.Index)
			}
		}
	}
	// Reachable-or-pruned: prune's contract is that every surviving
	// block except Exit is reachable from Entry.
	reach := map[*Block]bool{g.Entry: true}
	queue := []*Block{g.Entry}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				queue = append(queue, s)
			}
		}
	}
	for _, b := range g.Blocks {
		if !reach[b] && b != g.Exit {
			t.Fatalf("block %d survives prune but is unreachable from entry", b.Index)
		}
	}
	for _, l := range g.Loops {
		if l.Head == nil || !l.Blocks[l.Head] {
			t.Fatal("loop head missing from its own block set")
		}
		for b := range l.Blocks {
			if !index[b] {
				t.Fatal("loop set retains a pruned block")
			}
		}
	}
	// The solver must terminate and cover every block on whatever graph
	// the builder produced — run the cheapest real problem over it.
	facts := Solve[BitSet](g, &ReachingDefs{})
	if len(facts.In) != len(g.Blocks) {
		t.Fatalf("solver produced %d facts for %d blocks", len(facts.In), len(g.Blocks))
	}
}
