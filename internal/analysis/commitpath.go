package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CommitPath enforces the durability discipline PR 4 established for
// every file internal/store and internal/fft persist: data reaches its
// final name only through the write-temp → fsync → rename commit seam,
// and a failed write is rolled back, never left half-committed under a
// durable name. Two checks, both on the CFG:
//
//  1. Rename-needs-sync. A Rename call whose source resolves (through
//     reaching definitions of the f.Name() binding) to a file created
//     in this function must find that file in the synced state on every
//     path into the rename — a write or a handoff to a callee dirties
//     it, Sync cleans it. A Rename whose source is not a tracked file
//     is flagged unless some Sync precedes it on every path: renaming
//     bytes that were never fsynced commits a name to content the disk
//     may not hold.
//
//  2. Write-reaches-commit. Every direct Write/WriteString/WriteAt/
//     Truncate on a file created in this function must be post-dominated
//     by the commit seam or an explicit rollback: on every path from the
//     write to the exit the file is either Synced or Removed, or the
//     function carries a deferred cleanup (a defer whose body removes
//     files or closes the handle) that runs on all exits.
//
// Files are tracked from their creation call (Create, CreateTemp,
// OpenFile — matched by name so both package os and the iofault.FS
// seam qualify) to stay intraprocedural; a file received as a parameter
// belongs to its creator's analysis. The rule runs only over packages
// whose import path contains internal/store or internal/fft — the two
// layers that own durable files.
type CommitPath struct{}

func (CommitPath) Name() string { return "commitpath" }
func (CommitPath) Doc() string {
	return "durable-file writes must reach the fsync→rename commit seam or a rollback; renames need a preceding sync"
}

// Run is empty: the whole analysis is per-function.
func (CommitPath) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {}

// fileState is the per-file dataflow fact.
type fileState uint8

const (
	fileUntracked fileState = iota // not created on this path
	fileClean                      // created, nothing unsynced
	fileDirty                      // written (or handed to a callee) since the last sync
	fileSynced                     // Sync called after the last write
)

// merge joins two states per may-dirty semantics: a path on which the
// file may be dirty dominates.
func (a fileState) merge(b fileState) fileState {
	if a == fileDirty || b == fileDirty {
		return fileDirty
	}
	if a == fileSynced && b == fileSynced {
		return fileSynced
	}
	if a == fileUntracked {
		return b
	}
	if b == fileUntracked {
		return a
	}
	return fileClean
}

func (CommitPath) RunFunc(fi *FuncInfo, report func(pos token.Pos, format string, args ...any)) {
	p := fi.Pkg.Path
	if !strings.Contains(p, "internal/store") && !strings.Contains(p, "internal/fft") {
		return
	}
	info := fi.Pkg.Info
	g := fi.CFG
	if g == nil {
		return
	}

	// Pass 1 (AST, flow-insensitive): discover the tracked files, the
	// name bindings (tmpName := f.Name()), and whether a deferred
	// cleanup covers the exits.
	files := map[*types.Var]bool{}
	nameOf := map[*types.Var]*types.Var{} // string local -> file it names
	for _, b := range g.Blocks {
		inspectShallow(b.Nodes, func(n ast.Node) bool {
			// Creation is almost always the tuple form f, err := Create(...),
			// which eachDef cannot attribute an Rhs to — match the assignment
			// shape directly.
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Create", "CreateTemp", "OpenFile":
				if v := localDefVar(info, as.Lhs[0]); v != nil {
					files[v] = true
				}
			case "Name":
				if recv := localVar(info, sel.X); recv != nil {
					if v := localDefVar(info, as.Lhs[0]); v != nil {
						nameOf[v] = recv
					}
				}
			}
			return true
		})
	}
	deferredCleanup := false
	for _, d := range g.Defers {
		ast.Inspect(d, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Remove", "RemoveAll", "Close":
					deferredCleanup = true
				}
			}
			return true
		})
	}

	// Pass 2: solve the per-file state flow.
	prob := &commitFlow{info: info, files: files}
	facts := Solve[commitFact](g, prob)

	// Pass 3: walk each block with its entry fact, checking renames as
	// they occur and collecting write sites for the post-dominance check.
	type finding struct {
		pos token.Pos
		msg string
	}
	var finds []finding
	for _, b := range g.Blocks {
		st := facts.In[b].clone()
		inspectShallow(b.Nodes, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Rename" && len(call.Args) >= 2 {
				src := resolveRenameSource(info, call.Args[0], nameOf)
				switch {
				case src != nil && files[src]:
					if st.of(src) == fileDirty {
						finds = append(finds, finding{call.Pos(),
							"renamed file " + src.Name() + " has unsynced writes on some path; fsync before committing the rename"})
					} else if st.of(src) != fileSynced {
						finds = append(finds, finding{call.Pos(),
							"renamed file " + src.Name() + " was never synced in this function; the commit seam is write→fsync→rename"})
					}
				default:
					// Source not traceable to a file created here: require
					// that some fsync happened on every path in — a rename
					// commits a durable name, the content must be on disk
					// first. Moves of already-committed files earn a
					// reasoned ignore.
					if !st.anySynced {
						finds = append(finds, finding{call.Pos(),
							"rename without a preceding sync on every path; fsync the content before committing its name, or ignore with a reason if it is already durable"})
					}
				}
			}
			prob.apply(&st, call)
			return true
		})
	}

	// Pass 4: write-reaches-commit, unless a deferred cleanup guards
	// every exit.
	if !deferredCleanup {
		for _, b := range g.Blocks {
			inspectShallow(b.Nodes, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f, op := fileWriteCall(info, call, files)
				if f == nil {
					return true
				}
				commits := func(blk *Block) bool { return blockCommits(blk, info, f) }
				if !PostDominates(g, b, commits) && !blockCommitsAfter(b, n, info, f) {
					finds = append(finds, finding{call.Pos(),
						op + " on durable file " + f.Name() + " can reach the exit without fsync or rollback; sync it, remove it, or defer a cleanup"})
				}
				return true
			})
		}
	}

	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		report(f.pos, "%s", f.msg)
	}
}

// commitFact maps tracked files to their state, plus whether any sync
// has happened on every path.
type commitFact struct {
	states    map[*types.Var]fileState
	anySynced bool
	boundary  bool // distinguishes the unset Bottom from a real fact
}

func (f commitFact) of(v *types.Var) fileState { return f.states[v] }

func (f commitFact) clone() commitFact {
	out := commitFact{states: map[*types.Var]fileState{}, anySynced: f.anySynced, boundary: f.boundary}
	for k, v := range f.states {
		out.states[k] = v
	}
	return out
}

type commitFlow struct {
	info  *types.Info
	files map[*types.Var]bool
}

func (p *commitFlow) Direction() Direction { return Forward }
func (p *commitFlow) Boundary() commitFact {
	return commitFact{states: map[*types.Var]fileState{}, boundary: true}
}
func (p *commitFlow) Bottom() commitFact { return commitFact{} }
func (p *commitFlow) Merge(a, b commitFact) commitFact {
	// Bottom (no fact yet) is the merge identity.
	if a.states == nil {
		return b
	}
	if b.states == nil {
		return a
	}
	out := commitFact{states: map[*types.Var]fileState{}, anySynced: a.anySynced && b.anySynced, boundary: true}
	for k := range p.files {
		s := a.of(k).merge(b.of(k))
		if s != fileUntracked {
			out.states[k] = s
		}
	}
	return out
}
func (p *commitFlow) Equal(a, b commitFact) bool {
	if a.boundary != b.boundary || a.anySynced != b.anySynced || len(a.states) != len(b.states) {
		return false
	}
	for k, v := range a.states {
		if b.states[k] != v {
			return false
		}
	}
	return true
}
func (p *commitFlow) Transfer(b *Block, in commitFact) commitFact {
	if in.states == nil {
		in = commitFact{states: map[*types.Var]fileState{}, boundary: true}
	}
	out := in.clone()
	inspectShallow(b.Nodes, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			p.apply(&out, call)
		}
		return true
	})
	return out
}

// apply folds one call's effect into the fact.
func (p *commitFlow) apply(f *commitFact, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if ok {
		// Any fsync counts for the anySynced side-fact, even of a file
		// this function did not create (a shadow passed in, a handle off a
		// struct): the unresolved-rename check asks only "was something
		// synced before the name was committed".
		if sel.Sel.Name == "Sync" {
			f.anySynced = true
		}
		if recv := localVar(p.info, sel.X); recv != nil && p.files[recv] {
			switch sel.Sel.Name {
			case "Write", "WriteString", "WriteAt", "Truncate", "ReadFrom":
				f.states[recv] = fileDirty
			case "Sync":
				f.states[recv] = fileSynced
			case "Name", "Close", "Read", "ReadAt", "Seek", "Stat":
				// neutral
			}
			// Other methods leave the state unchanged.
		}
	}
	// A tracked file passed as an argument is handed to a callee that
	// may write it: dirty until the next sync. (Creation calls assign
	// the file, they never receive it.)
	for _, a := range call.Args {
		if v := localVar(p.info, a); v != nil && p.files[v] {
			f.states[v] = fileDirty
		}
	}
}

// localVar resolves an expression to the function-local variable it
// names, or nil.
func localVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() || v.IsField() {
		return nil
	}
	return v
}

// localDefVar is localVar for a defining position (the LHS of :=), where
// the identifier lives in Defs rather than Uses.
func localDefVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	var obj = info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() || v.IsField() {
		return nil
	}
	return v
}

// resolveRenameSource maps a Rename's first argument back to the file
// it names: directly a f.Name() call, or a local bound to one.
func resolveRenameSource(info *types.Info, arg ast.Expr, nameOf map[*types.Var]*types.Var) *types.Var {
	if call, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Name" {
			return localVar(info, sel.X)
		}
	}
	if v := localVar(info, arg); v != nil {
		if f, ok := nameOf[v]; ok {
			return f
		}
	}
	return nil
}

// fileWriteCall reports whether the call writes a tracked file,
// returning the file and the operation name.
func fileWriteCall(info *types.Info, call *ast.CallExpr, files map[*types.Var]bool) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteAt", "Truncate":
		if v := localVar(info, sel.X); v != nil && files[v] {
			return v, sel.Sel.Name
		}
	}
	return nil, ""
}

// blockCommits reports whether the block syncs or removes the file (or
// removes anything — a rollback path rarely names the same local).
func blockCommits(b *Block, info *types.Info, f *types.Var) bool {
	found := false
	inspectShallow(b.Nodes, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Sync":
			if localVar(info, sel.X) == f {
				found = true
			}
		case "Remove", "RemoveAll":
			found = true
		}
		return true
	})
	return found
}

// blockCommitsAfter reports whether the block syncs or removes f in a
// call lexically after the given node — PostDominates asks about paths
// leaving the block, so an in-block commit following the write must be
// credited separately.
func blockCommitsAfter(b *Block, after ast.Node, info *types.Info, f *types.Var) bool {
	found := false
	inspectShallow(b.Nodes, func(n ast.Node) bool {
		if found {
			return false
		}
		if n.Pos() <= after.Pos() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Sync":
			if localVar(info, sel.X) == f {
				found = true
			}
		case "Remove", "RemoveAll":
			found = true
		}
		return true
	})
	return found
}
