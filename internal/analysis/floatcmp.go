package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp flags == and != between floating-point or complex operands.
// The FFT accuracy contract (see ValidateCountPrecision) rests on
// tolerance comparisons; an exact equality on a spectrum or a count
// before rounding is almost always a latent bug. Comparisons where both
// operands are compile-time constants are exact and exempt, as are test
// files (the loader already excludes them, and the rule re-checks the
// file name so it stays correct if loading policy changes).
type FloatCmp struct{}

func (FloatCmp) Name() string { return "floatcmp" }
func (FloatCmp) Doc() string {
	return "flag ==/!= on floating-point or complex operands outside test files"
}

func (FloatCmp) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			if strings.HasSuffix(m.Fset.Position(file.Pos()).Filename, "_test.go") {
				continue
			}
			info := pkg.Info
			ast.Inspect(file, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt, yt := info.Types[be.X], info.Types[be.Y]
				if xt.Type == nil || yt.Type == nil {
					return true
				}
				if !isFloatOrComplex(xt.Type) && !isFloatOrComplex(yt.Type) {
					return true
				}
				if xt.Value != nil && yt.Value != nil {
					return true // constant expression, exact by definition
				}
				kind := "floating-point"
				if isComplexType(xt.Type) || isComplexType(yt.Type) {
					kind = "complex"
				}
				op := "equality (==)"
				if be.Op == token.NEQ {
					op = "inequality (!=)"
				}
				report(be.OpPos, "%s comparison on %s operands; compare against a tolerance", op, kind)
				return true
			})
		}
	}
}

func isComplexType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsComplex != 0
}
