package analysis

import (
	"go/token"
	"strings"
)

// IgnoreReason is the meta-rule keeping the escape hatch honest: every
// //opvet:ignore must name the rules it silences and carry a trailing
// reason. An unexplained suppression is indistinguishable from a stale
// one — six months later nobody knows whether the invariant genuinely
// does not apply or the comment merely outlived its author's context.
//
// Flagged forms:
//
//	//opvet:ignore                      bare blanket ignore — no rules, no reason
//	//opvet:ignore ctxpoll              rule list but no reason
//	//opvet:ignore ctxpol bounded       unknown rule name (typo never suppresses
//	                                    anything, the ignore is dead)
//
// Accepted:
//
//	//opvet:ignore ctxpoll send bounded by queue capacity
//	//opvet:ignore ctxpoll,goroleak drained by Stop
//
// The rule cannot be wildcard-suppressed: a bare //opvet:ignore does
// not silence the finding about itself (only an explicit
// "//opvet:ignore ignorereason <reason>" does — and then it has a
// reason, which is the point).
type IgnoreReason struct{}

func (IgnoreReason) Name() string { return "ignorereason" }
func (IgnoreReason) Doc() string {
	return "every //opvet:ignore must name existing rules and end with a reason"
}

func (IgnoreReason) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	known := map[string]bool{"*": true}
	for _, r := range Rules() {
		known[r.Name()] = true
	}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := annotationArgs(c.Text, "ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						report(c.Pos(), "bare //opvet:ignore suppresses every rule with no reason; write //opvet:ignore <rules> <reason>")
						continue
					}
					for _, r := range strings.Split(fields[0], ",") {
						if r = strings.TrimSpace(r); r != "" && !known[r] {
							report(c.Pos(), "unknown rule %q in //opvet:ignore list; the suppression is dead", r)
						}
					}
					if len(fields) == 1 {
						report(c.Pos(), "//opvet:ignore %s has no trailing reason; say why the invariant does not apply here", fields[0])
					}
				}
			}
		}
	}
}
