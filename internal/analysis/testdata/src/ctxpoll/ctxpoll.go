// Fixture for the ctxpoll rule: blocking or unbounded loops in stage
// methods must reach a cancellation poll on every path through the
// loop. Poll-free loops, one-branch polls, channel drains, and loops
// hidden in function literals fire; polled loops, transitively polling
// helpers, pure-arithmetic loops, and non-stage functions stay silent.
package ctxpoll

type session struct {
	sched *sched
	items chan int
	n     int
}

// stage mirrors the pipeline seam in internal/core.
type stage interface {
	name() string
	run(*session) error
}

type sched struct{ err error }

func (s *sched) Poll() error      { return s.err }
func (s *sched) Tick(n int) error { return s.err }

func work(i int) int { return i * i }

// pollEvery polls transitively: loops driving it count as polled.
func pollEvery(ses *session, i int) error { return ses.sched.Tick(i) }

// spin implements stage with a poll-free unbounded loop.
type spin struct{}

func (spin) name() string { return "spin" }

func (spin) run(ses *session) error {
	for { // want: for{} with no poll
		if work(ses.n) > 1000 {
			return nil
		}
		ses.n++
	}
}

// branchy polls on the even branch only; the odd path is a poll-free
// cycle through the loop header.
type branchy struct{}

func (branchy) name() string { return "branchy" }

func (branchy) run(ses *session) error {
	for i := 0; i < ses.n; i++ { // want: poll on one branch only
		if i%2 == 0 {
			if err := ses.sched.Poll(); err != nil {
				return err
			}
		}
		_ = work(i)
	}
	return nil
}

// drain ranges over a channel without ever polling: every iteration can
// block on the receive.
type drain struct{}

func (drain) name() string { return "drain" }

func (drain) run(ses *session) error {
	total := 0
	for v := range ses.items { // want: channel range with no poll
		total += work(v)
	}
	ses.n = total
	return nil
}

// litstage hides the loop in a function literal; scope follows the
// enclosing stage method.
type litstage struct{}

func (litstage) name() string { return "lit" }

func (litstage) run(ses *session) error {
	shrink := func() {
		for ses.n > 1 { // want: poll-free loop inside a literal
			ses.n = work(ses.n) % 97
		}
	}
	shrink()
	return nil
}

// suppressed carries a reasoned ignore and stays silent.
type suppressed struct{}

func (suppressed) name() string { return "suppressed" }

func (suppressed) run(ses *session) error {
	//opvet:ignore ctxpoll bounded by n, small by construction
	for i := 0; i < ses.n; i++ {
		_ = work(i)
	}
	return nil
}

// helper is not a stage method: its poll-free loop is out of scope.
func helper(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += work(i)
	}
	return total
}
