// True-negative fixture for ctxpoll: every blocking or unbounded loop
// in a stage method polls on every path — directly, through ctx.Err, or
// transitively through a helper — and loops outside the rule's scope or
// below its work threshold stay silent.
package ctxpollclean

import "context"

type session struct {
	sched *sched
	ctx   context.Context
	items chan int
	n     int
}

type stage interface {
	name() string
	run(*session) error
}

type sched struct{ err error }

func (s *sched) Poll() error      { return s.err }
func (s *sched) Tick(n int) error { return s.err }

func work(i int) int { return i * i }

// pollEvery polls transitively: loops driving it count as polled.
func pollEvery(ses *session, i int) error { return ses.sched.Tick(i) }

// polled polls the scheduler at the top of every iteration.
type polled struct{}

func (polled) name() string { return "polled" }

func (polled) run(ses *session) error {
	for i := 0; i < ses.n; i++ {
		if err := ses.sched.Poll(); err != nil {
			return err
		}
		_ = work(i)
	}
	return nil
}

// ctxed checks ctx.Err instead of the scheduler: same contract.
type ctxed struct{}

func (ctxed) name() string { return "ctxed" }

func (ctxed) run(ses *session) error {
	for v := range ses.items {
		if err := ses.ctx.Err(); err != nil {
			return err
		}
		ses.n += work(v)
	}
	return nil
}

// delegated polls through a helper; the may-poll set carries the fact
// across the call.
type delegated struct{}

func (delegated) name() string { return "delegated" }

func (delegated) run(ses *session) error {
	for i := 0; i < ses.n; i++ {
		if err := pollEvery(ses, i); err != nil {
			return err
		}
		_ = work(i)
	}
	return nil
}

// arithmetic loops with no calls and no channel operations are below
// the work threshold: exempt.
type summing struct{}

func (summing) name() string { return "summing" }

func (summing) run(ses *session) error {
	total := 0
	for i := 0; i < ses.n; i++ {
		total += i * i
	}
	ses.n = total
	return nil
}

// helper is not a stage method: out of scope even with a working loop.
func helper(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += work(i)
	}
	return total
}
