// True-negative fixture for errcheck-lite: every error is handled or
// explicitly discarded.
package errcheckclean

import (
	"fmt"
	"os"
)

func run(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	fmt.Println("ok")
	return nil
}
