module optdrift

go 1.22
