// Package httpapi is a boundary layer: it must reach mining options
// through the query compiler's Spec, never by hand-building them.
package httpapi

import (
	"optdrift"
	"optdrift/internal/core"
	"optdrift/internal/query"
)

// fromRequest hand-builds core.Options outside the homes: flagged.
func fromRequest(threshold float64) core.Options {
	return core.Options{Threshold: threshold, MinPeriod: 2} // want firing
}

// publicFromRequest hand-builds the public Options: flagged too.
func publicFromRequest(threshold float64) optdrift.Options {
	return optdrift.Options{Threshold: threshold} // want firing
}

// zero returns the empty literal: an error-return placeholder carries
// no parameters, so it stays silent.
func zero() (core.Options, error) {
	return core.Options{}, nil
}

// wireShim keeps a pre-Spec wire format alive and says why.
func wireShim(threshold float64) core.Options {
	//opvet:ignore optdrift v0 shard wire predates the spec adapters; deleted with the v0 protocol
	return core.Options{Threshold: threshold, MaxPeriod: 128}
}

// throughSpec is the sanctioned path.
func throughSpec(threshold float64) int {
	opt := query.OptionsFromSpec(query.Spec{Threshold: threshold})
	return core.Mine(opt)
}

// Handle ties the fixture together.
func Handle(threshold float64) int {
	a, _ := zero()
	return core.Mine(fromRequest(threshold)) +
		optdrift.Mine(publicFromRequest(threshold)) +
		core.Mine(wireShim(threshold)) +
		core.Mine(a) +
		throughSpec(threshold)
}
