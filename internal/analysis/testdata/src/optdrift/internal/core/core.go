// Package core is the fixture's stand-in for the mining engine: it
// defines the internal Options and may build them freely — the home
// package is exempt.
package core

type Options struct {
	Threshold float64
	MinPeriod int
	MaxPeriod int
}

// withDefaults hand-builds Options in the home package: exempt.
func withDefaults(o Options) Options {
	out := Options{Threshold: o.Threshold, MinPeriod: 1, MaxPeriod: o.MaxPeriod}
	if out.MaxPeriod == 0 {
		out.MaxPeriod = 64
	}
	return out
}

// Mine keeps the fixture honest about using its pieces.
func Mine(o Options) int {
	o = withDefaults(o)
	return o.MaxPeriod - o.MinPeriod
}
