// Package query is the fixture's compiler stand-in: lowering a Spec to
// core.Options is its whole job, so it is exempt by path.
package query

import "optdrift/internal/core"

// Spec mirrors the compiled query.
type Spec struct {
	Threshold float64
	MinPeriod int
	MaxPeriod int
}

// OptionsFromSpec is the one sanctioned lowering: exempt.
func OptionsFromSpec(sp Spec) core.Options {
	return core.Options{Threshold: sp.Threshold, MinPeriod: sp.MinPeriod, MaxPeriod: sp.MaxPeriod}
}
