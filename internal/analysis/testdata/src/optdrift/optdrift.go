// Package optdrift is the fixture's public root package: it defines the
// public Options and adapts them to core — the module root is an
// options home, so its literals are exempt.
package optdrift

import "optdrift/internal/core"

// Options is the public mining configuration.
type Options struct {
	Threshold float64
	MaxPeriod int
}

// internal lowers the public Options: a cross-package core.Options
// literal, exempt because the root package is an adapter home.
func (o Options) internal() core.Options {
	return core.Options{Threshold: o.Threshold, MaxPeriod: o.MaxPeriod}
}

// Mine is the public entry point.
func Mine(o Options) int { return core.Mine(o.internal()) }
