// True-negative fixture for floatcmp: tolerance comparisons and
// integer equality only.
package floatcmpclean

func near(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func sameLen(a, b []float64) bool { return len(a) == len(b) }
