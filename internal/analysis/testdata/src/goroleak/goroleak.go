// Fixture for the goroleak rule: every go statement needs a reachable
// join. A goroutine closing a local channel nobody receives from, one
// counting down a WaitGroup nothing waits on, a join that only exists
// on one branch, and a bare fire-and-forget spawn all fire; the
// suppressed flusher stays silent.
package goroleak

import "sync"

func compute(i int) int { return i * i }

// leakChan signals completion on a channel that never escapes and is
// never received from.
func leakChan(n int) {
	done := make(chan struct{})
	go func() { // want: local channel, no receive
		_ = compute(n)
		close(done)
	}()
}

// leakWG counts down a WaitGroup nothing waits on.
func leakWG(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want: local WaitGroup, no Wait
		defer wg.Done()
		_ = compute(n)
	}()
}

// halfJoined waits on one branch only; the early return abandons the
// goroutine — but a join on SOME path is still a join, so this spawn is
// excused: the rule demands reachability, not post-dominance.
func halfJoined(n int, quick bool) int {
	res := make(chan int, 1)
	go func() {
		res <- compute(n)
	}()
	if quick {
		return 0
	}
	return <-res
}

// fireAndForget spawns with no synchronization handle at all.
func fireAndForget(n int) {
	go compute(n) // want: no join, no handle
}

// flusher is a process-lifetime goroutine the author vouches for.
func flusher(n int) {
	//opvet:ignore goroleak telemetry flusher runs for the process lifetime
	go func() {
		for i := 0; i < n; i++ {
			_ = compute(i)
		}
	}()
}
