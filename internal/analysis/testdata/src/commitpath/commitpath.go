// Fixture for the commitpath rule, loaded under an import path
// containing internal/store: durable-file writes must reach the
// write-temp → fsync → rename commit seam or a rollback. A rename of a
// never-synced temp (the "fsync deleted from writeFileAtomic"
// regression), a sync on only one branch, a write that can reach the
// exit uncommitted, and a raw rename with no preceding sync all fire;
// the suppressed move stays silent.
package store

import (
	"os"
	"path/filepath"
)

// writeFrameNoSync mirrors the store's writeFileAtomic with the fsync
// deleted: the rename commits a name to content the disk may not hold.
func writeFrameNoSync(dir, name string, payload []byte) (err error) {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			_ = tmp.Close()
			_ = os.Remove(tmpName)
		}
	}()
	if _, err = tmp.Write(payload); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, filepath.Join(dir, name)) // want: renamed file never synced
}

// writeFrameBranchSync syncs only when durable is set: the other path
// renames dirty content.
func writeFrameBranchSync(dir string, payload []byte, durable bool) error {
	tmp, err := os.CreateTemp(dir, "frame-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		return err
	}
	if durable {
		if err := tmp.Sync(); err != nil {
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "frame.bin")) // want: dirty on the !durable path
}

// appendLog writes a durable file and lets every path reach the exit
// without a sync, a removal, or a deferred rollback.
func appendLog(dir string, line []byte) error {
	f, err := os.Create(filepath.Join(dir, "log"))
	if err != nil {
		return err
	}
	if _, err := f.Write(line); err != nil { // want: write can reach exit uncommitted
		return err
	}
	return f.Close()
}

// promote renames with no fsync anywhere in the function.
func promote(oldPath, newPath string) error {
	return os.Rename(oldPath, newPath) // want: rename without a preceding sync
}

// archive moves an already-durable file; the reasoned ignore is the
// sanctioned escape hatch for that.
func archive(oldPath, newPath string) error {
	//opvet:ignore commitpath moves an already-committed file; content was fsynced when written
	return os.Rename(oldPath, newPath)
}
