// Fixture for the poolpair rule: Get without Put fires, balanced and
// deferred pairs are silent, and the //opvet:acquire / //opvet:release
// wrapper annotations transfer the obligation to call sites.
package poolpair

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 64); return &b }}

func leak() { // want: Get with no Put
	buf := pool.Get().(*[]byte)
	_ = buf
}

func leakOnEarlyReturn(n int) { // want: two Gets, one Put
	a := pool.Get().(*[]byte)
	b := pool.Get().(*[]byte)
	_ = b
	if n > 0 {
		pool.Put(a)
	}
}

func balanced() {
	buf := pool.Get().(*[]byte)
	defer pool.Put(buf)
}

func balancedPlain() {
	buf := pool.Get().(*[]byte)
	pool.Put(buf)
}

// borrow returns a pooled buffer; its callers must release it.
//
//opvet:acquire
func borrow() *[]byte { return pool.Get().(*[]byte) }

// release returns a borrowed buffer to the pool.
//
//opvet:release
func release(b *[]byte) { pool.Put(b) }

func wrapperLeak() { // want: acquire-annotated call with no release
	b := borrow()
	_ = b
}

func wrapperBalanced() {
	b := borrow()
	defer release(b)
}

func suppressedLeak() {
	b := pool.Get().(*[]byte) //opvet:ignore poolpair ownership handed to channel
	_ = b
}
