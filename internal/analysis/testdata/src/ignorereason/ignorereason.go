// Fixture for the ignorereason meta-rule: every //opvet:ignore must
// name existing rules and end with a reason. Bare blanket ignores,
// reasonless rule lists, and unknown rule names fire; well-formed
// ignores stay silent.
package ignorereason

func value(a, b float64) bool {
	//opvet:ignore
	return a == b // want: bare blanket ignore above
}

func reasonless(a, b float64) bool {
	//opvet:ignore floatcmp
	return a == b // want: rule list with no reason above
}

func typoed(a, b float64) bool {
	//opvet:ignore floatcmpp comparing quantized grid values
	return a == b // want: unknown rule name above (the suppression is dead)
}

func mixedList(a, b float64) bool {
	//opvet:ignore floatcmp,nosuchrule comparing quantized grid values
	return a == b // want: unknown rule in an otherwise valid list above
}

func wellFormed(a, b float64) bool {
	//opvet:ignore floatcmp comparing quantized grid values
	return a == b
}
