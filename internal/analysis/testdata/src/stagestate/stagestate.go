// Fixture for the stagestate rule: methods of types implementing the
// package's unexported `stage` interface must not touch mutable
// package-level vars. Reads and writes both fire; non-stage functions,
// effectively-constant globals, synchronized globals, error sentinels,
// and suppressed lines stay silent.
package stagestate

import (
	"errors"
	"sync/atomic"
)

type session struct{ n int }

// stage mirrors the pipeline seam in internal/core.
type stage interface {
	name() string
	run(*session) error
}

// Budget is exported: any importer can assign it, so it is mutable.
var Budget = 100

// hits is unexported but written by a stage method: runtime-mutable.
var hits int

// mode is unexported and written by tune: runtime-mutable.
var mode = "fast"

// table is unexported and only assigned at declaration: effectively
// constant, silent even when a stage reads it.
var table = []int{7, 24, 168}

// inFlight is atomic-typed: silent.
var inFlight atomic.Int64

// errEmpty is an error sentinel: assign-once by convention, silent.
var errEmpty = errors.New("stagestate: empty")

type countStage struct{}

func (countStage) name() string { return "count" }

func (countStage) run(s *session) error {
	hits++ // want: write from a stage method
	if s.n > Budget { // want: read of an exported mutable global
		return errEmpty
	}
	s.n = table[0] // effectively constant: silent
	inFlight.Add(1)
	return nil
}

type modeStage struct{ fallback string }

func (m *modeStage) name() string { return "mode" }

func (m *modeStage) run(s *session) error {
	if mode == "slow" { // want: read of a tune-mutated global
		s.n = 0
	}
	_ = hits //opvet:ignore stagestate grandfathered diagnostic counter
	return nil
}

// tune is not a stage method; this rule leaves it to mutglobal.
func tune(fast bool) {
	if fast {
		mode = "fast"
		return
	}
	mode = "slow"
	hits = 0
}

// helper implements neither method set: silent even though it touches
// every global.
type helper struct{}

func (helper) reset() {
	hits = 0
	Budget = 1
}
