// Fixture for the errcheck-lite rule: discarded error returns fire in
// statement, defer, and go position; checked, explicitly-discarded,
// and allowlisted calls are silent.
package errcheck

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

func bad(f *os.File) {
	fallible()          // want: statement
	defer fallible()    // want: defer
	go fallible()       // want: go
	f.Close()           // want: method statement
	fmt.Fprintf(f, "x") // want: Fprintf to a file is not allowlisted
}

func good(f *os.File) error {
	if err := fallible(); err != nil {
		return err
	}
	_, err := pair()
	if err != nil {
		return err
	}
	_ = fallible() // explicit discard is a decision
	fmt.Println("terminal output is allowlisted")
	fmt.Fprintf(os.Stderr, "so is stderr\n")
	var sb strings.Builder
	sb.WriteString("never fails")
	var buf bytes.Buffer
	buf.WriteByte('x')
	return f.Close()
}

func suppressed(f *os.File) {
	f.Close() //opvet:ignore errcheck-lite read-only handle
	//opvet:ignore errcheck-lite best-effort cleanup
	os.Remove("tmp")
}
