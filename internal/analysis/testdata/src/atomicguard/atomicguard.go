// Fixture for the atomicguard rule: package-level sync/atomic tuning
// state may only be touched through its atomic method API. Value
// copies, raw address escapes (and every use the alias reaches), whole-
// value assignments, and method values fire; accessor calls, local
// atomics, and suppressed lines stay silent.
package atomicguard

import "sync/atomic"

// threshold mirrors fft.parallelThreshold: a package-level tuning knob.
var threshold atomic.Int64

// enabled is a second knob, for the boolean accessor shapes.
var enabled atomic.Bool

func accessors(n int64) int64 {
	threshold.Store(n)
	enabled.CompareAndSwap(false, true)
	return threshold.Load() // receiver of a called method: allowed
}

func copied() int64 {
	t := threshold // want: value copy
	return t.Load()
}

func addressed() {
	p := &threshold // want: address taken
	p.Store(1)      // want: use of the raw-pointer alias
}

func methodValue() func() int64 {
	return threshold.Load // want: method value over the raw variable
}

func reset() {
	threshold = atomic.Int64{} // want: whole-value assignment
}

func observe(v atomic.Int64) int64 { return v.Load() }

func passed() int64 {
	return observe(threshold) // want: copy into an argument
}

func suppressed() int64 {
	t := threshold //opvet:ignore atomicguard snapshot for a read-only report
	return t.Load()
}
