// True-negative fixture for ignorereason: every ignore names real
// rules and carries a reason — including the one way to grandfather a
// legacy blanket ignore: explicitly suppressing ignorereason itself,
// with a reason, on the line above it.
package ignorereasonclean

func tolerated(a, b float64) bool {
	//opvet:ignore floatcmp comparing quantized grid values
	return a == b
}

func multi(a, b float64) bool {
	//opvet:ignore floatcmp,errcheck-lite grid values are exact and the error is logged upstream
	return a == b
}

func grandfathered(a, b float64) bool {
	//opvet:ignore ignorereason legacy blanket ignore, scheduled for cleanup
	//opvet:ignore
	return a == b
}
