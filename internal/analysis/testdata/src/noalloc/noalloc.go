// Fixture for the noalloc rule: annotated functions may not contain
// AST-visible allocations; unannotated functions are out of contract.
package noalloc

// hot is under the zero-alloc contract and violates it in every way.
//
//opvet:noalloc
func hot(dst, src []float64, s string) []float64 {
	tmp := make([]float64, len(src)) // want: make
	p := new(int)                    // want: new
	_ = p
	lit := []int{1, 2, 3} // want: slice literal
	_ = lit
	m := map[int]int{} // want: map literal
	_ = m
	q := &point{1, 2} // want: &composite escapes
	_ = q
	b := []byte(s) // want: string conversion
	_ = b
	f := func() {} // want: closure
	f()
	go f()                       // want: go statement
	other := append(dst, src...) // want: append into new backing
	_ = tmp
	return other
}

type point struct{ x, y int }

// ok is annotated and clean: in-place append, stack values, panic
// message exempt, and index arithmetic only.
//
//opvet:noalloc
func ok(dst, src []float64) []float64 {
	if len(dst) < len(src) {
		panic("dst too small: " + string(rune('0'+len(src)%10))) // panic path may allocate
	}
	var acc point // struct value: stack
	_ = acc
	sums := [4]float64{} // array value: stack
	for i, v := range src {
		sums[i%4] += v
		dst[i] = v
	}
	dst = append(dst, 0) // x = append(x, ...): caller's capacity contract
	return dst
}

// unannotated may allocate freely.
func unannotated(n int) []int { return make([]int, n) }

//opvet:noalloc
func suppressedAlloc(n int) []int {
	return make([]int, n) //opvet:ignore noalloc cold path, measured
}
