// True-negative fixture for noalloc: the annotated hot loop works
// entirely in caller-provided storage.
package noallocclean

//opvet:noalloc
func axpy(y, x []float64, a float64) {
	if len(y) != len(x) {
		panic("axpy: length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

func cold(n int) []float64 { return make([]float64, n) }
