// True-negative fixture for commitpath: the full write-temp → fsync →
// rename seam, a rollback-guarded writer, an explicit-removal error
// path, and read-only file use. Loaded under an import path containing
// internal/store.
package storeclean

import (
	"os"
	"path/filepath"
)

// writeFileAtomic is the canonical seam, as internal/store implements
// it: temp file, write, fsync, close, rename, with a deferred rollback
// on the error path.
func writeFileAtomic(dir, name string, payload []byte) (err error) {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			_ = tmp.Close()
			_ = os.Remove(tmpName)
		}
	}()
	if _, err = tmp.Write(payload); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, filepath.Join(dir, name))
}

// writeSynced never renames; the write is post-dominated by the fsync.
func writeSynced(path string, payload []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// readOnly touches no durable state.
func readOnly(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer func() { _ = f.Close() }()
	buf := make([]byte, 16)
	return f.Read(buf)
}
