// True-negative fixture for goroleak: joined worker pools, received
// channels, select joins, deferred joins, and handles that legitimately
// leave the function — returned channels, struct-owned state, and
// caller-supplied WaitGroups.
package goroleakclean

import "sync"

func compute(i int) int { return i * i }

// pool joins its workers with Wait.
func pool(n, workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = compute(n)
		}()
	}
	wg.Wait()
}

// recv receives the result: the receive is the join.
func recv(n int) int {
	res := make(chan int, 1)
	go func() { res <- compute(n) }()
	return <-res
}

// selected joins through a select.
func selected(n int, quit chan struct{}) int {
	res := make(chan int, 1)
	go func() { res <- compute(n) }()
	select {
	case v := <-res:
		return v
	case <-quit:
		return 0
	}
}

// deferred joins on every exit path through a deferred Wait.
func deferred(n int) {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = compute(n)
	}()
}

// watch hands the channel to the caller: the join happens there.
func watch(n int) <-chan int {
	ch := make(chan int, 1)
	go func() { ch <- compute(n) }()
	return ch
}

// worker owns its lifecycle on the struct; Stop is the join.
type worker struct {
	done chan struct{}
}

func (w *worker) start(n int) {
	go func() {
		_ = compute(n)
		close(w.done)
	}()
}

func (w *worker) Stop() { <-w.done }

// spawnInto borrows the caller's WaitGroup; the caller waits.
func spawnInto(wg *sync.WaitGroup, n int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = compute(n)
	}()
}
