// Fixture for the mutglobal rule: goroutine-reachable reads of mutable
// globals fire — directly in a go-literal, through a call chain, and
// for an unexported var that is written at runtime. Atomic-typed,
// racesafe-annotated, channel-typed, and effectively-constant globals
// stay silent, as do reads from functions no goroutine reaches.
package mutglobal

import (
	"sync"
	"sync/atomic"
)

// Threshold is exported: any importer can assign it at runtime.
var Threshold = 1 << 16

// counter is unexported but mutated by Bump, so it is runtime-mutable.
var counter int

// tuned is unexported and only assigned at declaration and in init:
// effectively constant, silent.
var tuned = 42

// safeThreshold is atomic-typed: silent.
var safeThreshold atomic.Int64

// guarded is protected by mu; the annotation records the claim.
var guarded = map[int]int{} //opvet:racesafe guarded by mu
var mu sync.Mutex

// events is a channel: synchronization is the type's job.
var events = make(chan int, 1)

func init() { tuned = 43 }

// Bump is the write that makes counter mutable.
func Bump() { counter++ }

func direct() {
	go func() {
		_ = Threshold // want: direct read in go literal
	}()
}

func readsThreshold() int { return Threshold } // want: reached via spawn → chain

func chain() int { return readsThreshold() }

func spawn() {
	go func() {
		_ = chain()
	}()
}

func namedGoroutine() { // want: seeded by `go namedGoroutine()` below
	_ = counter
}

func launch() {
	go namedGoroutine()
}

func silent() {
	go func() {
		_ = tuned                     // effectively constant
		_ = int(safeThreshold.Load()) // atomic
		mu.Lock()
		_ = guarded[0] // racesafe-annotated
		mu.Unlock()
		events <- 1 // channel
	}()
}

func notReached() int {
	// No goroutine reaches this function: silent even though it reads
	// a mutable global.
	return Threshold + counter
}

func suppressed() {
	go func() {
		_ = Threshold //opvet:ignore mutglobal benign startup read
	}()
}
