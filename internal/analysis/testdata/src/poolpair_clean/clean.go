// True-negative fixture for poolpair: every acquisition is released.
package poolpairclean

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 64); return &b }}

func roundTrip() int {
	buf := pool.Get().(*[]byte)
	defer pool.Put(buf)
	return len(*buf)
}

func twoBuffers() int {
	a := pool.Get().(*[]byte)
	b := pool.Get().(*[]byte)
	n := len(*a) + len(*b)
	pool.Put(a)
	pool.Put(b)
	return n
}
