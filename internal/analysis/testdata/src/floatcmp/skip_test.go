// A test file in the fixture package: floatcmp exempts test files, so
// the exact comparison below must produce no diagnostic (the loader
// never even parses this file).
package floatcmp

func inTest(a, b float64) bool { return a == b }
