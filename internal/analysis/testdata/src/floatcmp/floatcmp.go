// Fixture for the floatcmp rule: exact comparisons on floats and
// complex numbers fire; integer comparisons, constant folds, and
// suppressed lines stay silent.
package floatcmp

type temp float64

func bad(a, b float64, c, d complex128, t temp) int {
	n := 0
	if a == b { // want: equality
		n++
	}
	if a != 0.5 { // want: inequality
		n++
	}
	if c == d { // want: complex equality
		n++
	}
	if t == 1.5 { // want: named float type
		n++
	}
	return n
}

func good(a, b float64, i, j int) bool {
	const x, y = 0.1, 0.2
	if x == y { // constants fold exactly: silent
		return false
	}
	if i == j { // integers: silent
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff < 1e-9
}

func suppressed(a, b float64) bool {
	if a == b { //opvet:ignore floatcmp exact sentinel comparison intended
		return true
	}
	//opvet:ignore floatcmp comment-above form
	return a != b
}

func suppressedAll(a, b float64) bool {
	return a == b //opvet:ignore
}
