// True-negative fixture for the stagestate rule: stages keep their state
// on the session and on their own values, package-level vars are either
// effectively constant, synchronized, or error sentinels, and the
// mutable ones are touched only outside stage implementations.
package stagestateclean

import (
	"errors"
	"sync/atomic"
)

type session struct {
	n     int
	seen  []int
	calls int
}

type stage interface {
	name() string
	run(*session) error
}

// periods is assigned only at declaration: effectively constant.
var periods = []int{7, 24, 168}

// running is atomic-typed: carries its own synchronization.
var running atomic.Bool

// ErrDrained is an error sentinel.
var ErrDrained = errors.New("stagestateclean: drained")

// debugDump is mutable, but only non-stage code touches it.
var debugDump bool

type sweep struct{ lo int }

func (sweep) name() string { return "sweep" }

func (s sweep) run(ses *session) error {
	ses.calls++
	for _, p := range periods {
		if p >= s.lo {
			ses.seen = append(ses.seen, p)
		}
	}
	if ses.n == 0 {
		return ErrDrained
	}
	running.Store(true)
	return nil
}

func enableDump() { debugDump = true }
