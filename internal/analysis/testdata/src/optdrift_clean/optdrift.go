// Package optdrift is the clean fixture's public root: an options
// home, so its adapter literals are exempt.
package optdrift

import "optdrift/internal/core"

type Options struct {
	Threshold float64
	MaxPeriod int
}

func (o Options) internal() core.Options {
	return core.Options{Threshold: o.Threshold, MaxPeriod: o.MaxPeriod}
}

// Mine is the public entry point.
func Mine(o Options) int { return core.Mine(o.internal()) }
