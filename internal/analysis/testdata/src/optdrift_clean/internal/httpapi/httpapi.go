// Package httpapi reaches options only through the Spec lowering and
// field writes on values the adapters produced — the shapes the rule
// must stay silent on.
package httpapi

import (
	"optdrift/internal/core"
	"optdrift/internal/query"
)

// fromRequest goes through the compiler's Spec; mutating a field on
// the lowered value afterwards is not a literal and does not drift.
func fromRequest(threshold float64) core.Options {
	opt := query.OptionsFromSpec(query.Spec{Threshold: threshold})
	opt.MinPeriod = 2
	return opt
}

// zero returns the empty placeholder literal, which is exempt.
func zero() (core.Options, error) {
	return core.Options{}, nil
}

// Handle exercises the package.
func Handle(threshold float64) int {
	a, _ := zero()
	return core.Mine(fromRequest(threshold)) + core.Mine(a)
}
