// Package query lowers Specs to core.Options; exempt by path.
package query

import "optdrift/internal/core"

type Spec struct {
	Threshold float64
	MinPeriod int
	MaxPeriod int
}

// OptionsFromSpec is the one sanctioned lowering.
func OptionsFromSpec(sp Spec) core.Options {
	return core.Options{Threshold: sp.Threshold, MinPeriod: sp.MinPeriod, MaxPeriod: sp.MaxPeriod}
}
