// Package core is the clean fixture's engine stand-in; the home
// package builds its Options freely.
package core

type Options struct {
	Threshold float64
	MinPeriod int
	MaxPeriod int
}

func withDefaults(o Options) Options {
	out := Options{Threshold: o.Threshold, MinPeriod: 1, MaxPeriod: o.MaxPeriod}
	if out.MaxPeriod == 0 {
		out.MaxPeriod = 64
	}
	return out
}

// Mine exercises the fixture.
func Mine(o Options) int {
	o = withDefaults(o)
	return o.MaxPeriod - o.MinPeriod
}
