// True-negative fixture for mutglobal: goroutines read only immutable,
// atomic, or locally-owned state.
package mutglobalclean

import "sync/atomic"

const limit = 1 << 10

var threshold atomic.Int64

func work(n int) int {
	done := make(chan int)
	go func() {
		m := int(threshold.Load())
		if m > limit {
			m = limit
		}
		done <- n * m
	}()
	return <-done
}
