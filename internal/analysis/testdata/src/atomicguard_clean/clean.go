// True-negative fixture for atomicguard: every touch of package-level
// atomic state goes through the accessor API; locals of atomic type and
// non-atomic globals are out of the rule's scope.
package atomicguardclean

import "sync/atomic"

var threshold atomic.Int64

var profile atomic.Pointer[config]

type config struct{ workers int }

func tune(n int64, c *config) {
	threshold.Store(n)
	profile.Store(c)
}

func read() (int64, *config) {
	return threshold.Load(), profile.Load()
}

func bump(delta int64) int64 {
	return threshold.Add(delta)
}

func swapIn(n int64) bool {
	return threshold.CompareAndSwap(threshold.Load(), n)
}

// locals of atomic type belong to their function; copy and re-zero at
// will, the rule only guards shared package state.
func scratch() int64 {
	var local atomic.Int64
	local.Store(7)
	other := local
	local = atomic.Int64{}
	_ = local.Load()
	return other.Load()
}

// plain globals are mutglobal's business, not atomicguard's.
var plainCounter int

func unrelated() {
	plainCounter++
}
