// True-negative mirror of the exec scheduler's Run: identical pool
// shape to the execpoll fixture, with the per-item Poll calls present —
// exactly what the real internal/exec does. Loaded under an import path
// ending in internal/exec.
package exec

import "sync"

type Scheduler struct {
	err  error
	done chan struct{}
}

func (s *Scheduler) Poll() error { return s.err }
func (s *Scheduler) Err() error  { return s.err }

// Run mirrors exec.Run: workers poll once per dequeued item.
func Run(s *Scheduler, n, workers int, fn func(int) error) error {
	queue := make(chan int, n)
	//opvet:ignore ctxpoll sends are bounded by the queue capacity n and never block
	for i := 0; i < n; i++ {
		queue <- i
	}
	close(queue)
	var wg sync.WaitGroup
	//opvet:ignore ctxpoll spawn loop bounded by the worker count; each worker polls per item
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				if s.Poll() != nil {
					continue // drain without processing
				}
				_ = fn(i)
			}
		}()
	}
	wg.Wait()
	return s.Err()
}

// RunSerial mirrors the single-worker path: poll before every item.
func RunSerial(s *Scheduler, n int, fn func(int) error) error {
	for i := 0; i < n; i++ {
		if err := s.Poll(); err != nil {
			return err
		}
		if err := fn(i); err != nil {
			return err
		}
	}
	return s.Err()
}

// Drain checks the done channel via Poll on every spin.
func Drain(s *Scheduler, queue chan int) int {
	taken := 0
	for {
		if s.Poll() != nil {
			return taken
		}
		select {
		case _, ok := <-queue:
			if !ok {
				return taken
			}
			taken++
		case <-s.done:
			return taken
		}
	}
}
