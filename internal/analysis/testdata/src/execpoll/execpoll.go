// Fixture mirroring the exec scheduler's Run worker pool with the
// per-item Poll calls deleted — the exact regression ctxpoll exists to
// catch. The fixture is loaded under an import path ending in
// internal/exec, so every function is in scope regardless of stage
// interfaces. The fill and spawn loops carry the same reasoned ignores
// the real scheduler does; the worker, serial, and drain loops fire.
package exec

import "sync"

type Scheduler struct {
	err  error
	done chan struct{}
}

func (s *Scheduler) Poll() error { return s.err }
func (s *Scheduler) Err() error  { return s.err }

// Run is the worker-pool shape of exec.Run with s.Poll() removed from
// the worker's per-item loop.
func Run(s *Scheduler, n, workers int, fn func(int) error) error {
	queue := make(chan int, n)
	//opvet:ignore ctxpoll sends are bounded by the queue capacity n and never block
	for i := 0; i < n; i++ {
		queue <- i
	}
	close(queue)
	var wg sync.WaitGroup
	//opvet:ignore ctxpoll spawn loop bounded by the worker count
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue { // want: worker loop with the Poll deleted
				_ = fn(i)
			}
		}()
	}
	wg.Wait()
	return s.Err()
}

// RunSerial is the single-worker path with its Poll deleted.
func RunSerial(s *Scheduler, n int, fn func(int) error) error {
	for i := 0; i < n; i++ { // want: serial loop with the Poll deleted
		if err := fn(i); err != nil {
			return err
		}
	}
	return s.Err()
}

// Drain spins on a queue forever without consulting cancellation.
func Drain(s *Scheduler, queue chan int) int {
	taken := 0
	for { // want: unbounded drain loop without a poll
		select {
		case _, ok := <-queue:
			if !ok {
				return taken
			}
			taken++
		case <-s.done:
			return taken
		}
	}
}
