package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"periodica/internal/analysis"
)

// -update rewrites the golden files from current rule output.
var update = flag.Bool("update", false, "rewrite golden files")

// goldenCases pairs each rule with its firing fixture and its
// true-negative fixture. The firing fixtures also carry //opvet:ignore
// suppressions, so the goldens prove both directions: seeded defects
// appear, suppressed and clean code stays silent. loadPath overrides
// the fixture's import path for rules that key their scope on it
// (ctxpoll's internal/exec, commitpath's internal/store). module marks
// fixtures that are miniature modules (their own go.mod) loaded with
// LoadModule — for rules whose scope spans packages, like optdrift's
// home-package exemptions.
var goldenCases = []struct {
	rule     string
	fixture  string
	loadPath string
	clean    bool
	module   bool
}{
	{"floatcmp", "floatcmp", "", false, false},
	{"floatcmp", "floatcmp_clean", "", true, false},
	{"poolpair", "poolpair", "", false, false},
	{"poolpair", "poolpair_clean", "", true, false},
	{"mutglobal", "mutglobal", "", false, false},
	{"mutglobal", "mutglobal_clean", "", true, false},
	{"noalloc", "noalloc", "", false, false},
	{"noalloc", "noalloc_clean", "", true, false},
	{"errcheck-lite", "errcheck", "", false, false},
	{"errcheck-lite", "errcheck_clean", "", true, false},
	{"stagestate", "stagestate", "", false, false},
	{"stagestate", "stagestate_clean", "", true, false},
	{"ctxpoll", "ctxpoll", "", false, false},
	{"ctxpoll", "ctxpoll_clean", "", true, false},
	{"ctxpoll", "execpoll", "fixture/execpoll/internal/exec", false, false},
	{"ctxpoll", "execpoll_clean", "fixture/execpoll_clean/internal/exec", true, false},
	{"atomicguard", "atomicguard", "", false, false},
	{"atomicguard", "atomicguard_clean", "", true, false},
	{"commitpath", "commitpath", "fixture/commitpath/internal/store", false, false},
	{"commitpath", "commitpath_clean", "fixture/commitpath_clean/internal/store", true, false},
	{"goroleak", "goroleak", "", false, false},
	{"goroleak", "goroleak_clean", "", true, false},
	{"ignorereason", "ignorereason", "", false, false},
	{"ignorereason", "ignorereason_clean", "", true, false},
	{"optdrift", "optdrift", "", false, true},
	{"optdrift", "optdrift_clean", "", true, true},
}

func TestRuleGoldens(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.rule+"/"+tc.fixture, func(t *testing.T) {
			rule := analysis.RuleByName(tc.rule)
			if rule == nil {
				t.Fatalf("rule %q not registered", tc.rule)
			}
			dir := filepath.Join("testdata", "src", tc.fixture)
			var m *analysis.Module
			var err error
			if tc.module {
				m, err = analysis.LoadModule(dir)
			} else {
				loadPath := tc.loadPath
				if loadPath == "" {
					loadPath = "fixture/" + tc.fixture
				}
				m, err = analysis.LoadPackageDir(dir, loadPath)
			}
			if err != nil {
				t.Fatalf("loading %s: %v", dir, err)
			}
			got := render(m, analysis.Run(m, []analysis.Rule{rule}))
			if tc.clean {
				if got != "" {
					t.Fatalf("true-negative fixture %s produced diagnostics:\n%s", tc.fixture, got)
				}
				return
			}
			if got == "" {
				t.Fatalf("fixture %s produced no diagnostics; the rule never fired", tc.fixture)
			}
			goldenPath := filepath.Join("testdata", tc.fixture+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run go test -run TestRuleGoldens -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// render formats diagnostics with fixture-relative file names so
// goldens are stable across checkouts.
func render(m *analysis.Module, diags []analysis.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(m.Dir, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		d.Pos.Filename = name
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestSuppressionSyntax covers the ignore-grammar corner cases through
// the floatcmp fixture: the golden there already proves suppressed
// lines are absent; this test asserts the specific suppressed lines
// never appear under any rendering.
func TestSuppressionSyntax(t *testing.T) {
	dir := filepath.Join("testdata", "src", "floatcmp")
	m, err := analysis.LoadPackageDir(dir, "fixture/floatcmp")
	if err != nil {
		t.Fatal(err)
	}
	got := render(m, analysis.Run(m, analysis.Rules()))
	for _, suppressedLine := range []string{"floatcmp.go:40:", "floatcmp.go:44:", "floatcmp.go:48:"} {
		if strings.Contains(got, suppressedLine) {
			t.Errorf("diagnostic on suppressed line %s survived:\n%s", suppressedLine, got)
		}
	}
}

// TestRegistry locks the rule catalogue: names are unique, sorted, and
// every rule documents itself.
func TestRegistry(t *testing.T) {
	rules := analysis.Rules()
	if len(rules) != 12 {
		t.Fatalf("expected 12 rules, got %d", len(rules))
	}
	for i, r := range rules {
		if r.Name() == "" || r.Doc() == "" {
			t.Errorf("rule %d lacks a name or doc", i)
		}
		if i > 0 && rules[i-1].Name() >= r.Name() {
			t.Errorf("registry not sorted: %s >= %s", rules[i-1].Name(), r.Name())
		}
	}
	if analysis.RuleByName("no-such-rule") != nil {
		t.Error("RuleByName invented a rule")
	}
}

// TestLoadModule type-checks the entire repository and asserts the
// packages the rules most depend on are present with type information.
func TestLoadModule(t *testing.T) {
	m, err := analysis.LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	want := map[string]bool{
		"periodica":               false,
		"periodica/internal/fft":  false,
		"periodica/internal/conv": false,
		"periodica/internal/exec": false,
		"periodica/cmd/opvet":     false,
	}
	for _, pkg := range m.Packages {
		if _, ok := want[pkg.Path]; ok {
			want[pkg.Path] = true
		}
		if pkg.Types == nil || pkg.Info == nil {
			t.Errorf("package %s loaded without type info", pkg.Path)
		}
	}
	for path, seen := range want {
		if !seen {
			t.Errorf("package %s not loaded", path)
		}
	}
}

// TestTreeClean is the analyzer's standing contract with the
// repository: the full rule registry over the full module reports
// nothing. Any new finding fails this test before it ever reaches CI's
// opvet step.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	m, err := analysis.LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if got := render(m, analysis.Run(m, analysis.Rules())); got != "" {
		t.Errorf("tree is not opvet-clean:\n%s", got)
	}
}
