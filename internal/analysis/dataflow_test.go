package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typeCheckFunc parses and type-checks one source file and returns the
// named function's declaration with its package's type info.
func typeCheckFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "df.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type check: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

func TestReachingDefsBranches(t *testing.T) {
	src := `package p
func f(cond bool) int {
	x := 1
	if cond {
		x = 2
	}
	return x
}`
	fd, info := typeCheckFunc(t, src, "f")
	g := buildCFG(fd.Body)
	rd := SolveReachingDefs(g, fd, info)

	// Find x and the block holding the return.
	var x *types.Var
	for _, s := range rd.Sites {
		if s.Var.Name() == "x" {
			x = s.Var
		}
	}
	if x == nil {
		t.Fatal("no def site for x")
	}
	var retBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				retBlock = b
			}
		}
	}
	if retBlock == nil {
		t.Fatal("no return block")
	}
	// Both definitions of x (the := and the branch =) reach the return.
	defs := rd.DefsOf(retBlock, x)
	if len(defs) != 2 {
		t.Fatalf("got %d defs of x at the return, want 2 (both branches)", len(defs))
	}
}

func TestReachingDefsKill(t *testing.T) {
	src := `package p
func f() int {
	x := 1
	x = 2
	return x
}`
	fd, info := typeCheckFunc(t, src, "f")
	g := buildCFG(fd.Body)
	rd := SolveReachingDefs(g, fd, info)
	var x *types.Var
	for _, s := range rd.Sites {
		if s.Var.Name() == "x" {
			x = s.Var
		}
	}
	// Straight-line code: the whole body is one block, so at its ENTRY
	// no definition reaches yet; the flow-insensitive projection must
	// still see both sites.
	count := 0
	if rd.AnyDef(x, func(s DefSite) bool { count++; return false }); count != 2 {
		t.Fatalf("AnyDef visited %d sites, want 2", count)
	}
	// At the exit block, only the killing definition (x = 2) flows out
	// of the entry block.
	out := 0
	for _, s := range rd.DefsOf(g.Exit, x) {
		out++
		if lit, ok := s.Rhs.(*ast.BasicLit); !ok || lit.Value != "2" {
			t.Errorf("surviving def is %v, want the x = 2 site", s.Rhs)
		}
	}
	if out != 1 {
		t.Fatalf("%d defs reach the exit, want 1 (x := 1 killed)", out)
	}
}

func TestReachingDefsParamBoundary(t *testing.T) {
	src := `package p
func f(a int) int {
	return a
}`
	fd, info := typeCheckFunc(t, src, "f")
	g := buildCFG(fd.Body)
	rd := SolveReachingDefs(g, fd, info)
	var a *types.Var
	for _, s := range rd.Sites {
		if s.Var.Name() == "a" {
			a = s.Var
		}
	}
	if a == nil {
		t.Fatal("parameter a has no def site")
	}
	if defs := rd.DefsOf(g.Entry, a); len(defs) != 1 {
		t.Fatalf("parameter def does not reach entry: %d sites", len(defs))
	}
}

func TestPostDominates(t *testing.T) {
	src := `package p
func f(cond bool) {
	work()
	if cond {
		commit()
		return
	}
	commit()
}
func work()   {}
func commit() {}`
	fd, info := typeCheckFunc(t, src, "f")
	_ = info
	g := buildCFG(fd.Body)
	isCall := func(b *Block, name string) bool {
		found := false
		inspectShallow(b.Nodes, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return true
		})
		return found
	}
	var workBlock *Block
	for _, b := range g.Blocks {
		if isCall(b, "work") {
			workBlock = b
		}
	}
	if workBlock == nil {
		t.Fatal("no block calls work")
	}
	// Every path from work() to the exit passes a commit() block.
	if !PostDominates(g, workBlock, func(b *Block) bool { return isCall(b, "commit") }) {
		t.Error("commit set should post-dominate the work block")
	}
	// Nothing post-dominates via a predicate that never matches.
	if PostDominates(g, workBlock, func(b *Block) bool { return false }) {
		t.Error("empty set cannot post-dominate a block with a path to exit")
	}
}

func TestEscapeLite(t *testing.T) {
	src := `package p
func f(sink chan int) (int, *int) {
	kept := 1
	kept++
	ret := 2
	sent := 3
	addr := 4
	captured := 5
	go func() { _ = captured }()
	sink <- sent
	p := &addr
	return ret, p
}`
	fd, info := typeCheckFunc(t, src, "f")
	escaped := EscapeLite(fd.Body, info)
	names := map[string]bool{}
	for v := range escaped {
		names[v.Name()] = true
	}
	for _, want := range []string{"ret", "sent", "addr", "captured", "p"} {
		if !names[want] {
			t.Errorf("%s should escape", want)
		}
	}
	if names["kept"] {
		t.Error("kept does not escape")
	}
}

func TestEscapeWalkSkipsGoStmt(t *testing.T) {
	src := `package p
func f() {
	onlyGo := 1
	alsoOutside := 2
	go func() { _ = onlyGo; _ = alsoOutside }()
	g(alsoOutside)
}
func g(int) {}`
	fd, info := typeCheckFunc(t, src, "f")
	escaped := escapeWalk(fd.Body, info, func(n ast.Node) bool {
		_, ok := n.(*ast.GoStmt)
		return ok
	})
	names := map[string]bool{}
	for v := range escaped {
		names[v.Name()] = true
	}
	if names["onlyGo"] {
		t.Error("a var referenced only inside a go statement must not escape when go is skipped")
	}
	if !names["alsoOutside"] {
		t.Error("a var passed to a call outside the go statement escapes")
	}
}

func TestSolveBackward(t *testing.T) {
	// A tiny backward liveness-flavored problem over string facts:
	// collect the names of blocks reachable toward the exit.
	g := buildFromBodySrc(t, `
if a > 0 {
	b = 1
} else {
	b = 2
}
return b`)
	p := &countingProblem{}
	facts := Solve[int](g, p)
	// Every block must have been given a fact.
	if len(facts.In) != len(g.Blocks) {
		t.Fatalf("facts for %d blocks, want %d", len(facts.In), len(g.Blocks))
	}
	// Forwardness check: the entry's In fact for a backward problem is
	// the merge over its successors' outs, which is > 0 here.
	if facts.In[g.Entry] == 0 {
		t.Error("backward facts did not propagate to the entry")
	}
}

func buildFromBodySrc(t *testing.T, body string) *CFG {
	t.Helper()
	g := parseAndBuild("func f(a, b int) int {\n" + body + "\n}")
	if g == nil {
		t.Fatal("body did not parse")
	}
	return g
}

// countingProblem is a backward problem whose fact is "distance-ish
// weight from the exit": Boundary 1 at exit, Transfer adds 1, Merge
// takes the max. Purely structural, just to exercise the backward
// plumbing of Solve.
type countingProblem struct{}

func (countingProblem) Direction() Direction { return Backward }
func (countingProblem) Boundary() int        { return 1 }
func (countingProblem) Bottom() int          { return 0 }
func (countingProblem) Transfer(b *Block, in int) int {
	if in == 0 {
		return 0
	}
	if in >= 1<<20 {
		return in // clamp so irreducible graphs cannot diverge
	}
	return in + 1
}
func (countingProblem) Merge(a, b int) int {
	if a > b {
		return a
	}
	return b
}
func (countingProblem) Equal(a, b int) bool { return a == b }
