package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrcheckLite flags statements that silently discard an error return:
// a call used as a bare statement, deferred, or launched with go, whose
// result type is or contains error. A small allowlist keeps the rule
// usable: terminal prints to stdout/stderr (fmt.Print*, and fmt.Fprint*
// whose first argument is os.Stdout or os.Stderr) and writers whose
// error is documented to always be nil (strings.Builder, bytes.Buffer).
// Assigning the error to _ is an explicit decision and is not flagged.
type ErrcheckLite struct{}

func (ErrcheckLite) Name() string { return "errcheck-lite" }
func (ErrcheckLite) Doc() string {
	return "flag call statements that discard an error return in non-test code"
}

func (ErrcheckLite) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			if strings.HasSuffix(m.Fset.Position(file.Pos()).Filename, "_test.go") {
				continue
			}
			info := pkg.Info
			check := func(call *ast.CallExpr, how string) {
				tv, ok := info.Types[call]
				if !ok || tv.Type == nil || !containsError(tv.Type) {
					return
				}
				if errAllowlisted(info, call) {
					return
				}
				report(call.Pos(), "%s of %s discards its error result", how, callName(info, call))
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if call, ok := st.X.(*ast.CallExpr); ok {
						check(call, "call")
					}
				case *ast.DeferStmt:
					check(st.Call, "deferred call")
				case *ast.GoStmt:
					check(st.Call, "go call")
				}
				return true
			})
		}
	}
}

// errAllowlisted reports whether the discarded error is acceptable.
func errAllowlisted(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	if obj == nil {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	pkg := fn.Pkg()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		// Methods on writers that never fail.
		rt := sig.Recv().Type()
		if namedFrom(rt, "strings", "Builder") || namedFrom(rt, "bytes", "Buffer") {
			return true
		}
		return false
	}
	if pkg == nil || pkg.Path() != "fmt" {
		return false
	}
	name := fn.Name()
	if name == "Print" || name == "Printf" || name == "Println" {
		return true
	}
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if po, ok := info.Uses[id].(*types.PkgName); ok && po.Imported().Path() == "os" {
					return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
				}
			}
		}
	}
	return false
}

// callName renders a readable callee name for diagnostics.
func callName(info *types.Info, call *ast.CallExpr) string {
	if obj := calleeObject(info, call); obj != nil {
		if fn, ok := obj.(*types.Func); ok {
			if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
				return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + ")." + fn.Name()
			}
			if fn.Pkg() != nil {
				return fn.Pkg().Name() + "." + fn.Name()
			}
			return fn.Name()
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}
