// Package analysis is periodica's project-specific static-analysis
// framework: a miniature, dependency-free counterpart of
// golang.org/x/tools/go/analysis built only on the standard library
// (go/parser, go/ast, go/types, go/importer). It exists because the
// paper's one-pass guarantee rests on the convolution counts being
// *exact*, and the invariants that keep them exact — tolerance
// comparisons instead of float ==, balanced sync.Pool Get/Put pairs,
// no unsynchronized reads of tuning globals from goroutines, and the
// zero-alloc contract on the FFT hot path — are invisible to go vet.
//
// A Rule inspects a fully type-checked Module (every package of the
// repository, loaded by LoadModule) and reports Diagnostics. The
// framework applies //opvet: suppression comments, sorts the findings,
// and renders them as "file:line:col: rule: message" lines; cmd/opvet
// is the CLI driver and exits non-zero when any diagnostic survives.
//
// Annotation grammar (all comments start with "//opvet:", no space):
//
//	//opvet:ignore rule1,rule2 reason   suppress the named rules on this line /
//	                               the next line; the trailing reason is
//	                               mandatory (the ignorereason meta-rule flags
//	                               bare ignores, unknown rule names, and
//	                               missing reasons)
//	//opvet:ignore                 legacy blanket form: still suppresses every
//	                               rule except ignorereason itself, which
//	                               reports it
//	//opvet:noalloc                (FuncDecl doc) function must stay allocation-free
//	//opvet:racesafe               (var decl doc or line comment) global is safe to
//	                               read concurrently; mutglobal skips it
//	//opvet:acquire                (FuncDecl doc) function returns a borrowed pooled
//	                               buffer; poolpair treats calls to it like Pool.Get
//	                               and exempts its own body
//	//opvet:release                (FuncDecl doc) function returns a buffer to a
//	                               pool; poolpair treats calls to it like Pool.Put
//
// Trailing free text after the annotation word (a reason) is allowed
// and ignored by the parser.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one type-checked package of the module.
type Package struct {
	// Path is the import path ("periodica/internal/fft").
	Path string
	// Dir is the absolute directory the files were parsed from.
	Dir string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the per-expression type information for Files.
	Info *types.Info
}

// Module is the unit every rule runs over: all packages of one Go
// module, sharing a single FileSet.
type Module struct {
	// Path is the module path from go.mod ("periodica").
	Path string
	// Dir is the module root directory.
	Dir string
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Packages is sorted by import path.
	Packages []*Package

	// funcs caches the per-function CFGs built by Functions().
	funcs      []*FuncInfo
	funcsBuilt bool
}

// Diagnostic is one finding of one rule.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical "file:line:col: rule: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Rule is a single named check over a Module.
type Rule interface {
	// Name is the identifier used in diagnostics and //opvet:ignore lists.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Run inspects the module and reports findings through report.
	Run(m *Module, report func(pos token.Pos, format string, args ...any))
}

// Rules returns the default registry, sorted by name.
func Rules() []Rule {
	return []Rule{
		AtomicGuard{},
		CommitPath{},
		CtxPoll{},
		ErrcheckLite{},
		FloatCmp{},
		GoroLeak{},
		IgnoreReason{},
		MutGlobal{},
		NoAlloc{},
		OptDrift{},
		PoolPair{},
		StageState{},
	}
}

// RuleByName resolves one registry entry; nil if absent.
func RuleByName(name string) Rule {
	for _, r := range Rules() {
		if r.Name() == name {
			return r
		}
	}
	return nil
}

// Run executes the rules over the module, filters the findings through
// //opvet:ignore suppression, and returns them sorted by position.
// Rules that additionally implement FlowRule receive every function's
// CFG after their whole-module pass.
func Run(m *Module, rules []Rule) []Diagnostic {
	sup := newSuppressions(m)
	var diags []Diagnostic
	for _, r := range rules {
		name := r.Name()
		report := func(pos token.Pos, format string, args ...any) {
			p := m.Fset.Position(pos)
			if sup.suppressed(name, p) {
				return
			}
			diags = append(diags, Diagnostic{Pos: p, Rule: name, Message: fmt.Sprintf(format, args...)})
		}
		r.Run(m, report)
		if fr, ok := r.(FlowRule); ok {
			for _, fn := range m.Functions() {
				fr.RunFunc(fn, report)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// suppressions indexes //opvet:ignore comments: a diagnostic on line L
// of file F is suppressed when an ignore comment sits on line L or on
// line L-1 (a comment directly above the offending statement).
type suppressions struct {
	// byLine maps file name -> line -> list of suppressed rule names,
	// where the single entry "*" suppresses every rule.
	byLine map[string]map[int][]string
}

func newSuppressions(m *Module) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]string{}}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rules, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					p := m.Fset.Position(c.Pos())
					lines := s.byLine[p.Filename]
					if lines == nil {
						lines = map[int][]string{}
						s.byLine[p.Filename] = lines
					}
					// The comment suppresses its own line and the line
					// below it, so both "stmt //opvet:ignore x" and a
					// comment-above form work.
					lines[p.Line] = append(lines[p.Line], rules...)
					lines[p.Line+1] = append(lines[p.Line+1], rules...)
				}
			}
		}
	}
	return s
}

func (s *suppressions) suppressed(rule string, pos token.Position) bool {
	for _, r := range s.byLine[pos.Filename][pos.Line] {
		// The ignorereason meta-rule flags defective ignore comments, so a
		// wildcard ignore must not silence the very finding about itself;
		// only naming the rule explicitly suppresses it.
		if r == "*" && rule == "ignorereason" {
			continue
		}
		if r == "*" || r == rule {
			return true
		}
	}
	return false
}

// parseIgnore extracts the suppressed rule list from one comment.
// "//opvet:ignore" alone yields ["*"]; "//opvet:ignore a,b reason"
// yields ["a","b"]. Non-ignore comments return ok=false.
func parseIgnore(text string) (rules []string, ok bool) {
	rest, found := annotationArgs(text, "ignore")
	if !found {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return []string{"*"}, true
	}
	for _, r := range strings.Split(fields[0], ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		rules = []string{"*"}
	}
	return rules, true
}

// annotationArgs reports whether the comment is "//opvet:<word> ..."
// and returns the text after the word.
func annotationArgs(text, word string) (rest string, ok bool) {
	const prefix = "//opvet:"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	body := text[len(prefix):]
	if !strings.HasPrefix(body, word) {
		return "", false
	}
	rest = body[len(word):]
	// The word must end here or be followed by whitespace, so
	// "noallocs" does not match "noalloc".
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return rest, true
}

// hasAnnotation reports whether any comment in the group is the given
// //opvet: annotation word.
func hasAnnotation(doc *ast.CommentGroup, word string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if _, ok := annotationArgs(c.Text, word); ok {
			return true
		}
	}
	return false
}

// funcHasAnnotation checks a function declaration's doc comment.
func funcHasAnnotation(fn *ast.FuncDecl, word string) bool {
	return hasAnnotation(fn.Doc, word)
}
