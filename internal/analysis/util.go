// Shared type- and AST-inspection helpers for the rules.
package analysis

import (
	"go/ast"
	"go/types"
)

// deref strips one level of pointer indirection.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedFrom reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func namedFrom(t types.Type, pkgPath, name string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// typePkgPath returns the defining package path of t's (possibly
// pointer-wrapped) named type, or "".
func typePkgPath(t types.Type) string {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return ""
	}
	if obj := n.Obj(); obj != nil && obj.Pkg() != nil {
		return obj.Pkg().Path()
	}
	return ""
}

// isFloatOrComplex reports whether t's underlying type is a
// floating-point or complex basic type.
func isFloatOrComplex(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// calleeObject resolves the object a call expression invokes: the
// function or method for direct calls, nil for builtins, conversions,
// and calls through function-typed values.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call (fmt.Println): no Selection entry,
		// the Sel identifier resolves directly.
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// isBuiltinCall reports whether the call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// containsError reports whether t is, or (for tuples) contains, the
// predeclared error type.
func containsError(t types.Type) bool {
	switch tt := t.(type) {
	case *types.Tuple:
		for i := 0; i < tt.Len(); i++ {
			if containsError(tt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, types.Universe.Lookup("error").Type())
	}
}

// eachFunc invokes f for every function declaration with a body in the
// package.
func eachFunc(pkg *Package, f func(file *ast.File, fn *ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				f(file, fn)
			}
		}
	}
}
