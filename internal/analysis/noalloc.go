package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc turns the planned-FFT zero-alloc claim into a standing
// contract: a function annotated //opvet:noalloc must contain no
// AST-visible allocation in its own body. Flagged operations:
//
//   - make and new
//   - composite literals of slice or map type, and &T{...}
//     (struct and array *values* live on the stack and are allowed)
//   - append whose result is assigned to a different variable than its
//     first argument (growing a caller-provided buffer in place,
//     x = append(x, ...), is the caller's capacity contract and allowed)
//   - function literals and go statements (closure and goroutine
//     allocation)
//   - conversions between string and []byte/[]rune
//
// The check is per-function and not transitive: callees are separately
// annotated or out of contract. Panic arguments are exempt — the error
// path is allowed to allocate its message.
type NoAlloc struct{}

func (NoAlloc) Name() string { return "noalloc" }
func (NoAlloc) Doc() string {
	return "flag AST-visible allocations inside functions annotated //opvet:noalloc"
}

func (NoAlloc) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	for _, pkg := range m.Packages {
		info := pkg.Info
		eachFunc(pkg, func(_ *ast.File, fn *ast.FuncDecl) {
			if !funcHasAnnotation(fn, "noalloc") {
				return
			}
			allowedAppends := inPlaceAppends(info, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.CallExpr:
					if isBuiltinCall(info, nn, "panic") {
						return false // the error path may allocate its message
					}
					switch {
					case isBuiltinCall(info, nn, "make"):
						report(nn.Pos(), "make allocates in //opvet:noalloc function %s", fn.Name.Name)
					case isBuiltinCall(info, nn, "new"):
						report(nn.Pos(), "new allocates in //opvet:noalloc function %s", fn.Name.Name)
					case isBuiltinCall(info, nn, "append") && !allowedAppends[nn]:
						report(nn.Pos(), "append into new backing in //opvet:noalloc function %s (only x = append(x, ...) is allowed)", fn.Name.Name)
					case allocatingConversion(info, nn):
						report(nn.Pos(), "string conversion allocates in //opvet:noalloc function %s", fn.Name.Name)
					}
				case *ast.CompositeLit:
					t := info.Types[nn].Type
					if t == nil {
						return true
					}
					switch t.Underlying().(type) {
					case *types.Slice:
						report(nn.Pos(), "slice literal allocates in //opvet:noalloc function %s", fn.Name.Name)
					case *types.Map:
						report(nn.Pos(), "map literal allocates in //opvet:noalloc function %s", fn.Name.Name)
					}
				case *ast.UnaryExpr:
					if nn.Op == token.AND {
						if _, ok := ast.Unparen(nn.X).(*ast.CompositeLit); ok {
							report(nn.Pos(), "&composite literal escapes in //opvet:noalloc function %s", fn.Name.Name)
						}
					}
				case *ast.FuncLit:
					report(nn.Pos(), "function literal allocates a closure in //opvet:noalloc function %s", fn.Name.Name)
				case *ast.GoStmt:
					report(nn.Pos(), "go statement allocates in //opvet:noalloc function %s", fn.Name.Name)
				}
				return true
			})
		})
	}
}

// inPlaceAppends collects append calls of the shape x = append(x, ...),
// whose target and first argument resolve to the same variable.
func inPlaceAppends(info *types.Info, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	allowed := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinCall(info, call, "append") || len(call.Args) == 0 {
				continue
			}
			lhsID, ok1 := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			argID, ok2 := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok1 || !ok2 {
				continue
			}
			lobj := info.Uses[lhsID]
			if lobj == nil {
				lobj = info.Defs[lhsID]
			}
			if lobj != nil && lobj == info.Uses[argID] {
				allowed[call] = true
			}
		}
		return true
	})
	return allowed
}

// allocatingConversion reports conversions between string and
// []byte/[]rune, which copy their operand.
func allocatingConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	dst := tv.Type.Underlying()
	argTV, ok := info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return false
	}
	src := argTV.Type.Underlying()
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
