package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// StageState forbids package-level mutable state in the mining pipeline's
// stage implementations and in the execution scheduler. The pipeline's
// determinism contract — the same Result at any worker count — holds only
// when every stage keeps its state on the session or on the stage value
// itself; a package-level var shared across concurrently running sessions
// breaks isolation in ways no single-session test observes.
//
// The rule applies in two scopes:
//
//   - Any package declaring an unexported non-empty interface named `stage`
//     (the pipeline seam in internal/core): methods of types implementing
//     that interface must not read or write mutable package-level vars.
//   - Any package whose import path ends in "internal/exec" (the
//     scheduler): no mutable package-level vars may be declared at all —
//     scheduler state belongs on the Scheduler.
//
// Mutability follows the mutglobal rule: exported vars, and unexported
// vars assigned outside their declaration and init. Vars carrying their
// own synchronization (sync, sync/atomic, channels), error sentinels
// (`var ErrX = errors.New(...)` is the stdlib convention and is assign-once
// by that convention), and //opvet:racesafe-annotated vars are exempt.
type StageState struct{}

func (StageState) Name() string { return "stagestate" }
func (StageState) Doc() string {
	return "forbid package-level mutable state in pipeline stage implementations and the exec scheduler"
}

func (StageState) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	candidates := mutableGlobals(m)
	for obj := range candidates {
		if isErrorSentinel(obj) {
			delete(candidates, obj)
		}
	}

	type finding struct {
		pos token.Pos
		msg func()
	}
	var finds []finding
	add := func(pos token.Pos, format string, args ...any) {
		finds = append(finds, finding{pos, func() { report(pos, format, args...) }})
	}

	for _, pkg := range m.Packages {
		if strings.HasSuffix(pkg.Path, "internal/exec") {
			for obj := range candidates {
				if obj.Pkg() == pkg.Types {
					add(obj.Pos(), "package-level mutable state %s in the scheduler package; scheduler state must live on the Scheduler", obj.Name())
				}
			}
		}

		iface := stageInterface(pkg)
		if iface == nil {
			continue
		}
		eachFunc(pkg, func(_ *ast.File, fn *ast.FuncDecl) {
			if fn.Recv == nil {
				return
			}
			obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				return
			}
			recv := obj.Type().(*types.Signature).Recv().Type()
			if !types.Implements(recv, iface) && !types.Implements(types.NewPointer(recv), iface) {
				return
			}
			stageName := types.TypeString(recv, types.RelativeTo(pkg.Types)) + "." + fn.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if g := pkg.Info.Uses[id]; g != nil && candidates[g] {
					add(id.Pos(), "stage implementation %s touches mutable package-level var %s; stage state must live on the session or the stage value", stageName, g.Name())
				}
				return true
			})
		})
	}

	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		f.msg()
	}
}

// stageInterface returns the package's unexported `stage` interface — the
// pipeline seam this rule keys on — or nil when the package declares none.
// Empty interfaces are ignored: everything implements them, so keying on
// one would drag every method in the package into scope.
func stageInterface(pkg *Package) *types.Interface {
	obj, ok := pkg.Types.Scope().Lookup("stage").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		return nil
	}
	return iface
}

// isErrorSentinel reports whether the var has the exact type error — the
// `var ErrX = errors.New(...)` sentinel convention, assign-once by
// convention and matched by callers via errors.Is.
func isErrorSentinel(obj types.Object) bool {
	return types.Identical(obj.Type(), types.Universe.Lookup("error").Type())
}
