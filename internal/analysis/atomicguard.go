package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicGuard enforces the tuning-knob invariant established in PRs 2
// and 6: package-level tuning/threshold state lives in sync/atomic
// values (fft.parallelThreshold, fft.fourStepMin, fft.tunedProfile) and
// is touched only through the atomic API. Any other reference to such a
// variable defeats the synchronization — copying the value races and
// copies the internal lock word, and letting its address flow out as a
// raw pointer invites exactly the unsynchronized access the accessor
// pair exists to prevent.
//
// Per reference to a package-level sync/atomic variable, the rule
// allows only the receiver position of a method call (v.Load(),
// v.Store(x), v.Add, v.Swap, v.CompareAndSwap — any method; the atomic
// types expose nothing unsafe). It flags:
//
//   - value copies: x := v, f(v), return v
//   - raw address escapes: p := &v and any later use of p, found
//     through reaching definitions (the flow part: the alias is
//     reported at every use site it reaches, not just where it is
//     created)
//   - writes: v = atomic.Int64{} (re-zeroing drops racing updates)
//
// The rule is module-wide: it needs no annotation, because the atomic
// API itself is the sanctioned access path.
type AtomicGuard struct{}

func (AtomicGuard) Name() string { return "atomicguard" }
func (AtomicGuard) Doc() string {
	return "package-level atomic tuning state may only be touched through its atomic method API"
}

// Run is empty: the whole analysis is per-function.
func (AtomicGuard) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {}

func (AtomicGuard) RunFunc(fi *FuncInfo, report func(pos token.Pos, format string, args ...any)) {
	info := fi.Pkg.Info
	body := fi.Body()
	if body == nil {
		return
	}

	// parents maps each node to its parent inside this function body, so
	// a use's syntactic role (method receiver vs anything else) is
	// recoverable. Nested function literals are skipped throughout: each
	// gets its own RunFunc pass.
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok && len(stack) > 0 {
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	var rd *ReachingDefs // built lazily; most functions touch no atomics

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := atomicGlobal(info, id)
		if v == nil {
			return true
		}
		switch parent := parents[id].(type) {
		case *ast.SelectorExpr:
			if parent.X == id {
				// v.Method(...) — allowed when the selector is the callee
				// of a call; v.Load (method value, no call) leaks a bound
				// method over the raw variable, flag it.
				if call, ok := parents[parent].(*ast.CallExpr); ok && call.Fun == parent {
					return true
				}
				report(id.Pos(), "method value %s.%s copies atomic tuning global %s out; call it directly instead", v.Name(), parent.Sel.Name, v.Name())
				return true
			}
		case *ast.UnaryExpr:
			if parent.Op == token.AND {
				report(id.Pos(), "address of atomic tuning global %s taken; raw pointers bypass its accessor pair", v.Name())
				// The flow part: report every use the raw pointer reaches.
				if rd == nil {
					rd = SolveReachingDefs(fi.CFG, fi.FuncNode(), info)
				}
				reportAliasUses(fi, rd, v, parent, info, report)
				return true
			}
		case *ast.ValueSpec, *ast.AssignStmt:
			if isAssignTarget(parent, id) {
				report(id.Pos(), "assignment to atomic tuning global %s replaces the whole atomic value; use its Store accessor", v.Name())
				return true
			}
		}
		report(id.Pos(), "atomic tuning global %s copied by value; go through its Load/Store accessor pair", v.Name())
		return true
	})
}

// atomicGlobal resolves id to a package-level variable of a sync/atomic
// type, or nil.
func atomicGlobal(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if typePkgPath(v.Type()) != "sync/atomic" {
		return nil
	}
	return v
}

// isAssignTarget reports whether id appears on the left-hand side of
// the assignment or value spec.
func isAssignTarget(parent ast.Node, id *ast.Ident) bool {
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == id {
				return true
			}
		}
	case *ast.ValueSpec:
		for _, name := range p.Names {
			if name == id {
				return true
			}
		}
	}
	return false
}

// reportAliasUses walks the blocks the &v definition reaches and
// reports each use of the local it was bound to — the reader sees every
// place the raw pointer ends up, not just its origin.
func reportAliasUses(fi *FuncInfo, rd *ReachingDefs, v *types.Var, addr *ast.UnaryExpr, info *types.Info, report func(pos token.Pos, format string, args ...any)) {
	// Find the local(s) defined from this &v expression.
	aliases := map[*types.Var]bool{}
	for _, site := range rd.Sites {
		if site.Rhs != nil && ast.Unparen(site.Rhs) == addr {
			aliases[site.Var] = true
		}
	}
	if len(aliases) == 0 {
		return
	}
	for _, b := range fi.CFG.Blocks {
		inspectShallow(b.Nodes, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			u, ok := info.Uses[id].(*types.Var)
			if !ok || !aliases[u] {
				return true
			}
			// The &v def reaches this use either across blocks (entry
			// fact) or from earlier in the same block.
			hit := false
			for _, site := range rd.DefsOf(b, u) {
				if site.Rhs != nil && ast.Unparen(site.Rhs) == addr {
					hit = true
				}
			}
			if !hit {
				for _, node := range b.Nodes {
					if node.End() <= id.Pos() && nodeContains(node, addr) {
						hit = true
						break
					}
				}
			}
			if hit {
				report(id.Pos(), "use of %s, a raw pointer to atomic tuning global %s; access the global through its accessor pair", u.Name(), v.Name())
			}
			return true
		})
	}
}

// nodeContains reports whether the node's source range contains target.
func nodeContains(n ast.Node, target ast.Node) bool {
	return n.Pos() <= target.Pos() && target.End() <= n.End()
}
