package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// OptDrift guards the single-options-path invariant the query DSL
// established: every layer reaches mining options through the query
// compiler's Spec and the adapters next to the Options types, so
// defaults and bounds checks live in exactly one place. A composite
// literal of core.Options or the public Options hand-built anywhere
// else is the seed of a new conversion path whose validation can
// drift — the drift this repo already collected four times before the
// Spec collapse.
//
// Flagged: non-empty composite literals whose type is a named struct
// called Options defined in an options home package — the module root
// or any .../internal/core. Exempt:
//
//   - the home packages themselves (the adapters live there);
//   - .../internal/query (the compiler lowers Specs by construction);
//   - examples/... (they demonstrate the public struct API on purpose);
//   - test files and the zero literal Options{} (an error-return
//     placeholder carries no parameters to drift).
//
// Code that must hand-build options anyway (a wire-compat shim, a
// fixture) carries an //opvet:ignore optdrift with its reason.
type OptDrift struct{}

func (OptDrift) Name() string { return "optdrift" }
func (OptDrift) Doc() string {
	return "hand-built mining Options literal outside the options home packages and the query compiler; build a query.Spec and lower it through the spec adapters"
}

func (OptDrift) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	for _, pkg := range m.Packages {
		if optionsPathExempt(m, pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			if strings.HasSuffix(m.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok || len(lit.Elts) == 0 {
					return true
				}
				tv, ok := pkg.Info.Types[lit]
				if !ok {
					return true
				}
				named, ok := types.Unalias(tv.Type).(*types.Named)
				if !ok {
					return true
				}
				obj := named.Obj()
				if obj.Name() != "Options" || obj.Pkg() == nil || !optionsHome(m, obj.Pkg().Path()) {
					return true
				}
				report(lit.Pos(),
					"%s.Options built by hand outside its home packages; build a query.Spec (or compile a query string) and lower it through the spec adapters so defaults and validation cannot drift",
					obj.Pkg().Name())
				return true
			})
		}
	}
}

// optionsHome reports whether path is a package that defines mining
// options: the module root (the public Options) or an internal/core.
func optionsHome(m *Module, path string) bool {
	return path == m.Path || strings.HasSuffix(path, "/internal/core")
}

// optionsPathExempt reports whether code in pkg may build Options
// literals: the homes, the query compiler, and the examples.
func optionsPathExempt(m *Module, path string) bool {
	return optionsHome(m, path) ||
		strings.HasSuffix(path, "/internal/query") ||
		path == m.Path+"/examples" || strings.HasPrefix(path, m.Path+"/examples/")
}
