package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// MutGlobal flags reads of mutable package-level variables from
// functions that a goroutine can reach. The planned FFT engine exposes
// tuning knobs as package globals; an unsynchronized read from a worker
// goroutine is a data race the race detector only catches when a test
// happens to write concurrently — this rule catches it statically.
//
// A package-level var is a candidate when it is mutable: exported (any
// importer may assign it at runtime), or unexported and assigned
// somewhere outside its declaration and init functions. Vars are exempt
// when their type provides its own synchronization (anything from
// sync or sync/atomic, and channels), and when their declaration is
// annotated //opvet:racesafe (e.g. "guarded by mu" — the annotation is
// the reviewer-visible claim).
//
// Goroutine reachability is a conservative static call graph: the
// bodies of `go func(){...}()` literals and of named functions invoked
// by a go statement are seeds, and every function a seed transitively
// calls through direct (resolvable) calls is reachable. Calls through
// function values and interface methods are not resolved, so the rule
// under-approximates reachability rather than guessing.
type MutGlobal struct{}

func (MutGlobal) Name() string { return "mutglobal" }
func (MutGlobal) Doc() string {
	return "flag reads of mutable package-level vars from goroutine-reachable functions"
}

// fnode is one call-graph node: a declared function/method or a
// function literal.
type fnode struct {
	name    string
	callees []*fnode
	reads   []readSite
	seed    bool
	reached bool
}

type readSite struct {
	obj types.Object
	pos token.Pos
}

func (MutGlobal) Run(m *Module, report func(pos token.Pos, format string, args ...any)) {
	candidates := mutableGlobals(m)
	if len(candidates) == 0 {
		return
	}

	// Index every declared function by its object so calls resolve
	// across packages, then walk each body building edges, reads, and
	// go-statement seeds.
	declNode := map[types.Object]*fnode{}
	type declBody struct {
		pkg *Package
		fn  *ast.FuncDecl
	}
	var decls []declBody
	for _, pkg := range m.Packages {
		eachFunc(pkg, func(_ *ast.File, fn *ast.FuncDecl) {
			obj := pkg.Info.Defs[fn.Name]
			if obj == nil {
				return
			}
			declNode[obj] = &fnode{name: pkg.Types.Name() + "." + fn.Name.Name}
			decls = append(decls, declBody{pkg, fn})
		})
	}
	var all []*fnode
	for _, d := range decls {
		node := declNode[d.pkg.Info.Defs[d.fn.Name]]
		all = append(all, node)
		all = append(all, walkFuncBody(d.pkg.Info, d.fn.Body, node, declNode, candidates)...)
	}

	// Propagate reachability from the seeds.
	var queue []*fnode
	for _, n := range all {
		if n.seed {
			n.reached = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.callees {
			if !c.reached {
				c.reached = true
				queue = append(queue, c)
			}
		}
	}

	type finding struct {
		pos token.Pos
		vr  string
		fn  string
	}
	var finds []finding
	for _, n := range all {
		if !n.reached {
			continue
		}
		for _, r := range n.reads {
			finds = append(finds, finding{r.pos, r.obj.Name(), n.name})
		}
	}
	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		report(f.pos, "read of mutable global %s from goroutine-reachable %s; use an atomic, guard it and annotate //opvet:racesafe, or make it immutable", f.vr, f.fn)
	}
}

// walkFuncBody records the reads, resolvable callees, and go-statement
// seeds of one function body, creating child nodes for nested function
// literals (each assumed callable by its encloser). It returns the
// literal nodes it created.
func walkFuncBody(info *types.Info, body *ast.BlockStmt, owner *fnode, declNode map[types.Object]*fnode, candidates map[types.Object]bool) []*fnode {
	var created []*fnode
	writeIdents := map[*ast.Ident]bool{}
	var walk func(n ast.Node, owner *fnode) bool
	walk = func(n ast.Node, owner *fnode) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			child := &fnode{name: "function literal in " + owner.name}
			owner.callees = append(owner.callees, child)
			created = append(created, child)
			ast.Inspect(nn.Body, func(c ast.Node) bool { return walk(c, child) })
			return false
		case *ast.GoStmt:
			// Seed the spawned function: a literal becomes a seeded
			// child; a resolvable named function's node is seeded.
			if lit, ok := nn.Call.Fun.(*ast.FuncLit); ok {
				child := &fnode{name: "goroutine in " + owner.name, seed: true}
				owner.callees = append(owner.callees, child)
				created = append(created, child)
				ast.Inspect(lit.Body, func(c ast.Node) bool { return walk(c, child) })
				// Still walk the call's arguments under the owner.
				for _, a := range nn.Call.Args {
					ast.Inspect(a, func(c ast.Node) bool { return walk(c, owner) })
				}
				return false
			}
			if obj := calleeObject(info, nn.Call); obj != nil {
				if n := declNode[obj]; n != nil {
					n.seed = true
				}
			}
			return true
		case *ast.CallExpr:
			if obj := calleeObject(info, nn); obj != nil {
				if callee := declNode[obj]; callee != nil {
					owner.callees = append(owner.callees, callee)
				}
			}
			return true
		case *ast.AssignStmt:
			// A plain assignment's LHS identifiers are writes, not
			// reads; compound assignments (+=) read too, so only
			// token.ASSIGN and := exempt the target.
			if nn.Tok == token.ASSIGN || nn.Tok == token.DEFINE {
				for _, lhs := range nn.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						writeIdents[id] = true
					}
				}
			}
			return true
		case *ast.Ident:
			if writeIdents[nn] {
				return true
			}
			if obj := info.Uses[nn]; obj != nil && candidates[obj] {
				owner.reads = append(owner.reads, readSite{obj: obj, pos: nn.Pos()})
			}
			return true
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return walk(n, owner) })
	return created
}

// mutableGlobals collects the module's candidate package-level vars.
func mutableGlobals(m *Module) map[types.Object]bool {
	candidates := map[types.Object]bool{}
	var unexported []types.Object
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if hasAnnotation(gd.Doc, "racesafe") || hasAnnotation(vs.Doc, "racesafe") || hasAnnotation(vs.Comment, "racesafe") {
						continue
					}
					for _, name := range vs.Names {
						obj := pkg.Info.Defs[name]
						if obj == nil || name.Name == "_" {
							continue
						}
						if typeSynchronized(obj.Type()) {
							continue
						}
						if name.IsExported() {
							candidates[obj] = true
						} else {
							unexported = append(unexported, obj)
						}
					}
				}
			}
		}
	}
	if len(unexported) > 0 {
		written := globalWrites(m)
		for _, obj := range unexported {
			if written[obj] {
				candidates[obj] = true
			}
		}
	}
	return candidates
}

// typeSynchronized reports whether the type carries its own
// synchronization: anything defined in sync or sync/atomic, and
// channels.
func typeSynchronized(t types.Type) bool {
	switch p := typePkgPath(t); p {
	case "sync", "sync/atomic":
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// globalWrites finds package-level vars assigned inside function bodies
// other than init, or whose address is taken anywhere — either makes an
// unexported var runtime-mutable.
func globalWrites(m *Module) map[types.Object]bool {
	written := map[types.Object]bool{}
	note := func(info *types.Info, e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Var); ok && obj.Parent() == obj.Pkg().Scope() {
				written[obj] = true
			}
		}
	}
	for _, pkg := range m.Packages {
		eachFunc(pkg, func(_ *ast.File, fn *ast.FuncDecl) {
			isInit := fn.Recv == nil && fn.Name.Name == "init"
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.AssignStmt:
					if isInit {
						return true
					}
					for _, lhs := range nn.Lhs {
						note(pkg.Info, lhs)
					}
				case *ast.IncDecStmt:
					if !isInit {
						note(pkg.Info, nn.X)
					}
				case *ast.UnaryExpr:
					// Address-taken counts even in init: the pointer
					// can outlive it.
					if nn.Op == token.AND {
						note(pkg.Info, nn.X)
					}
				}
				return true
			})
		})
	}
	return written
}
