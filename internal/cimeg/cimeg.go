// Package cimeg synthesizes the paper's CIMEG workload: daily power
// consumption rates of a customer over one year. The real 5 MB project
// database is not available, so the generator embeds the weekly structure
// Tables 1–2 depend on — a 7-day profile with a very-low-consumption day
// (the paper's "(a,3)" pattern: under 6000 W on the 4th day of the week) and
// mild seasonal drift. Discretization follows the paper's expert levels:
// "very low" below 6000 Watts/day and 2000-Watt bands above.
package cimeg

import (
	"math"
	"math/rand"

	"periodica/internal/alphabet"
	"periodica/internal/discretize"
	"periodica/internal/series"
)

// Config describes a synthetic customer trace.
type Config struct {
	// Days of daily data; the paper's database spans one year. Default 365.
	Days int
	// Seed for the noise generator.
	Seed int64
	// NoiseSD is the additive noise standard deviation in Watts; default 600.
	NoiseSD float64
	// Seasonal adds a yearly sinusoidal component (heating/cooling) when
	// true.
	Seasonal bool
}

func (c Config) withDefaults() Config {
	if c.Days == 0 {
		c.Days = 365
	}
	if c.NoiseSD == 0 { //opvet:ignore floatcmp zero means unset
		c.NoiseSD = 600
	}
	return c
}

// dayShape is the base Watts/day per weekday (0 = Monday): workdays around
// 8–11 kW, a very low 4th day (the customer is away), higher weekends.
var dayShape = [7]float64{8800, 9400, 10600, 5600, 9800, 12400, 11800}

// Generate returns daily consumption in Watts/day for cfg.Days days.
func Generate(cfg Config) []float64 {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]float64, cfg.Days)
	for day := range out {
		v := dayShape[day%7]
		if cfg.Seasonal {
			v += 900 * math.Sin(2*math.Pi*float64(day)/365)
		}
		v += rng.NormFloat64() * cfg.NoiseSD
		if v < 0 {
			v = 0
		}
		out[day] = v
	}
	return out
}

// Alphabet returns the five-level alphabet a..e (a = very low, …,
// e = very high).
func Alphabet() *alphabet.Alphabet { return alphabet.Letters(5) }

// Scheme returns the paper's CIMEG discretization: very low below
// 6000 Watts/day, then 2000-Watt bands.
func Scheme() discretize.Scheme {
	s, err := discretize.NewBreakpoints([]float64{6000, 8000, 10000, 12000})
	if err != nil {
		panic(err)
	}
	return s
}

// Discretize converts daily consumption into the five-level symbol series.
func Discretize(values []float64) *series.Series {
	s, err := Scheme().Apply(values, Alphabet())
	if err != nil {
		panic(err)
	}
	return s
}

// Series is Generate followed by Discretize.
func Series(cfg Config) *series.Series {
	return Discretize(Generate(cfg))
}

// Customers generates one discretized series per customer: all share the
// weekly rhythm but differ in noise realization, the input shape for
// database-level mining.
func Customers(n int, cfg Config) []*series.Series {
	out := make([]*series.Series, n)
	for i := range out {
		custCfg := cfg
		custCfg.Seed = cfg.Seed + int64(i)*7919
		out[i] = Series(custCfg)
	}
	return out
}
