package cimeg

import (
	"testing"

	"periodica/internal/core"
)

func TestGenerateLength(t *testing.T) {
	if got := len(Generate(Config{Days: 100, Seed: 1})); got != 100 {
		t.Fatalf("len = %d, want 100", got)
	}
	if got := len(Generate(Config{Seed: 1})); got != 365 {
		t.Fatalf("default len = %d, want 365", got)
	}
}

func TestDiscretizeLevels(t *testing.T) {
	s := Discretize([]float64{3000, 7000, 9000, 11000, 20000})
	if s.String() != "abcde" {
		t.Fatalf("levels = %q, want abcde", s.String())
	}
}

func TestSeriesDetectsWeeklyPeriod(t *testing.T) {
	// Table 1: period 7 detected at thresholds ≤ 60%.
	s := Series(Config{Days: 365, Seed: 2})
	if conf := core.PeriodConfidence(s, 7); conf < 0.6 {
		t.Fatalf("confidence at period 7 = %v, want ≥ 0.6", conf)
	}
}

func TestWeeklyMultiplesAlsoDetected(t *testing.T) {
	s := Series(Config{Days: 365, Seed: 3})
	for _, p := range []int{14, 21} {
		if conf := core.PeriodConfidence(s, p); conf < 0.4 {
			t.Fatalf("confidence at period %d = %v, want ≥ 0.4", p, conf)
		}
	}
}

func TestAwayDayPatternAtModerateThreshold(t *testing.T) {
	// Table 2's CIMEG row: (a,3) — very low consumption on the 4th day of
	// the week — appears at threshold 50%.
	s := Series(Config{Days: 365, Seed: 4})
	res, err := core.Mine(s, core.Options{Threshold: 0.4, MinPeriod: 7, MaxPeriod: 7, MaxPatternPeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Alphabet().Index("a")
	found := false
	for _, sp := range res.Periodicities {
		if sp.Symbol == a && sp.Position == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("pattern (a,3) not detected at period 7: %+v", res.Periodicities)
	}
}

func TestNoiseKeepsWeeklyBelowPerfect(t *testing.T) {
	s := Series(Config{Days: 365, Seed: 5})
	if conf := core.PeriodConfidence(s, 7); conf >= 1 {
		t.Fatalf("confidence at period 7 = %v, want < 1 under noise", conf)
	}
}

func TestSeasonalDriftChangesValues(t *testing.T) {
	with := Generate(Config{Days: 365, Seed: 6, Seasonal: true})
	without := Generate(Config{Days: 365, Seed: 6, Seasonal: false})
	diff := 0
	for i := range with {
		if with[i] != without[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seasonal component changed nothing")
	}
}

func TestCustomers(t *testing.T) {
	customers := Customers(4, Config{Days: 60, Seed: 10})
	if len(customers) != 4 {
		t.Fatalf("customer count %d", len(customers))
	}
	if customers[0].String() == customers[3].String() {
		t.Fatal("customers share a noise realization")
	}
	for _, s := range customers {
		if s.Len() != 60 {
			t.Fatalf("customer length %d", s.Len())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Days: 50, Seed: 7})
	b := Generate(Config{Days: 50, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestValuesNonNegative(t *testing.T) {
	for _, v := range Generate(Config{Days: 365, Seed: 8, NoiseSD: 5000}) {
		if v < 0 {
			t.Fatalf("negative consumption %v", v)
		}
	}
}
