package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestEngineAblationShape(t *testing.T) {
	rows, err := EngineAblation([]int{1000, 2000}, 0.7, 1500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if math.IsNaN(rows[0].NaiveSecs) {
		t.Fatal("naive skipped below the limit")
	}
	if !math.IsNaN(rows[1].NaiveSecs) {
		t.Fatal("naive not skipped above the limit")
	}
	for _, r := range rows {
		if r.BitsetSecs <= 0 || r.FFTSecs <= 0 || r.ParallelSecs <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
	}
	var b strings.Builder
	RenderEngineAblation(&b, "t", rows)
	if !strings.Contains(b.String(), "bitset") || !strings.Contains(b.String(), "-") {
		t.Fatalf("render: %s", b.String())
	}
}

func TestSketchAblationErrorDecays(t *testing.T) {
	rows, err := SketchAblation(4096, []int{2, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].MeanRelErr >= rows[0].MeanRelErr {
		t.Fatalf("sketch error did not decay with repetitions: %+v", rows)
	}
	var b strings.Builder
	RenderSketchAblation(&b, "t", rows)
	if !strings.Contains(b.String(), "%") {
		t.Fatalf("render: %s", b.String())
	}
}

func TestPruneAblationMinPairsBites(t *testing.T) {
	rows, err := PruneAblation(4096, []int{60}, []int{1, 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Survivors >= rows[0].Survivors {
		t.Fatalf("MinPairs=16 did not prune more than MinPairs=1: %+v", rows)
	}
	if rows[0].Total != rows[1].Total {
		t.Fatal("totals differ across MinPairs")
	}
	var b strings.Builder
	RenderPruneAblation(&b, "t", rows)
	if !strings.Contains(b.String(), "survivors") {
		t.Fatalf("render: %s", b.String())
	}
}
