package experiments

import (
	"fmt"
	"io"
	"sort"

	"periodica/internal/baseline"
	"periodica/internal/core"
	"periodica/internal/eval"
	"periodica/internal/gen"
	"periodica/internal/periodogram"
	"periodica/internal/series"
	"periodica/internal/trends"
)

// QualityConfig drives the cross-method detection-quality study (an
// evaluation beyond the paper's: hit rates of the true period per method
// under increasing noise).
type QualityConfig struct {
	Length int
	Period int
	Sigma  int
	Ratios []float64 // replacement-noise ratios
	Runs   int
	TopK   int // ranked-list depth scored
	Seed   int64
}

func (c QualityConfig) withDefaults() QualityConfig {
	if c.Length == 0 {
		c.Length = 8000
	}
	if c.Period == 0 {
		c.Period = 25
	}
	if c.Sigma == 0 {
		c.Sigma = 10
	}
	if len(c.Ratios) == 0 {
		c.Ratios = []float64{0.1, 0.3, 0.5}
	}
	if c.Runs == 0 {
		c.Runs = 3
	}
	if c.TopK == 0 {
		c.TopK = 10
	}
	return c
}

// QualityRow reports one method at one noise ratio, averaged over runs.
type QualityRow struct {
	Method    string
	Noise     gen.Noise
	Ratio     float64
	HitAtK    float64 // fraction of runs where a multiple of P ranks in top K
	ExactAtK  float64 // fraction of runs where P itself ranks in top K
	MeanRank  float64 // mean 1-based rank of the first multiple (misses count as K+1)
	ExactRank float64 // mean 1-based rank of P itself (misses count as K+1)
}

// ranker produces a ranked period list (best first) for one series.
type ranker func(s *series.Series) ([]int, error)

// Quality runs every detector over the same noisy series and scores the
// rank of the true period (or a multiple) in each method's candidate list.
func Quality(cfg QualityConfig) ([]QualityRow, error) {
	cfg = cfg.withDefaults()
	methods := []struct {
		name string
		rank ranker
	}{
		{"miner (p-value)", rankMiner},
		{"trends (sketch)", rankTrends(cfg.Seed)},
		{"periodogram", rankPeriodogram},
		{"ma-hellerstein", rankMaHellerstein},
	}
	regimes := []struct {
		noise gen.Noise
		ratio float64
	}{}
	for _, ratio := range cfg.Ratios {
		regimes = append(regimes, struct {
			noise gen.Noise
			ratio float64
		}{gen.Replacement, ratio})
	}
	// One insertion+deletion regime: alignment-destroying noise, where every
	// detector struggles.
	regimes = append(regimes, struct {
		noise gen.Noise
		ratio float64
	}{gen.Insertion | gen.Deletion, 0.05})

	var out []QualityRow
	for _, method := range methods {
		for _, regime := range regimes {
			hits, exact, rankSum, exactSum := 0, 0, 0, 0
			for run := 0; run < cfg.Runs; run++ {
				s, _, err := gen.Generate(gen.Config{
					Length: cfg.Length, Period: cfg.Period, Sigma: cfg.Sigma, Dist: gen.Uniform,
					Noise: regime.noise, NoiseRatio: regime.ratio,
					Seed: cfg.Seed + int64(run)*31337,
				})
				if err != nil {
					return nil, err
				}
				ranked, err := method.rank(s)
				if err != nil {
					return nil, err
				}
				if len(ranked) > cfg.TopK {
					ranked = ranked[:cfg.TopK]
				}
				if r := eval.RankOfTrue(ranked, cfg.Period); r > 0 {
					hits++
					rankSum += r
				} else {
					rankSum += cfg.TopK + 1
				}
				er := 0
				for i, p := range ranked {
					if p == cfg.Period {
						er = i + 1
						break
					}
				}
				if er > 0 {
					exact++
					exactSum += er
				} else {
					exactSum += cfg.TopK + 1
				}
			}
			out = append(out, QualityRow{
				Method:    method.name,
				Noise:     regime.noise,
				Ratio:     regime.ratio,
				HitAtK:    float64(hits) / float64(cfg.Runs),
				ExactAtK:  float64(exact) / float64(cfg.Runs),
				MeanRank:  float64(rankSum) / float64(cfg.Runs),
				ExactRank: float64(exactSum) / float64(cfg.Runs),
			})
		}
	}
	return out, nil
}

// rankMiner orders periods by the strength of their most significant
// periodicity (minimum binomial p-value), ties to the smaller period.
func rankMiner(s *series.Series) ([]int, error) {
	pvals, err := core.PeriodPValues(s, 0)
	if err != nil {
		return nil, err
	}
	periods := make([]int, 0, len(pvals)-1)
	for p := 1; p < len(pvals); p++ {
		periods = append(periods, p)
	}
	sort.SliceStable(periods, func(i, j int) bool {
		return pvals[periods[i]] < pvals[periods[j]]
	})
	return periods, nil
}

func rankTrends(seed int64) ranker {
	return func(s *series.Series) ([]int, error) {
		r, err := trends.Sketched(s, 0, 0, seed)
		if err != nil {
			return nil, err
		}
		return r.Candidates(), nil
	}
}

func rankPeriodogram(s *series.Series) ([]int, error) {
	cands, err := periodogram.Detect(s, periodogram.Config{PowerFactor: 2, TopK: 100})
	if err != nil {
		return nil, err
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.Period
	}
	return out, nil
}

func rankMaHellerstein(s *series.Series) ([]int, error) {
	cands := baseline.MaHellerstein(s, baseline.MHConfig{})
	type scored struct {
		period int
		score  float64
	}
	best := map[int]float64{}
	for _, list := range cands {
		for _, ps := range list {
			if ps.Score > best[ps.Period] {
				best[ps.Period] = ps.Score
			}
		}
	}
	var all []scored
	for p, sc := range best {
		all = append(all, scored{p, sc})
	}
	sort.Slice(all, func(i, j int) bool {
		// Exact comparison keeps the comparator transitive; a tolerance
		// here would make the sort order input-dependent.
		if all[i].score != all[j].score { //opvet:ignore floatcmp exact tie-break in sort comparator

			return all[i].score > all[j].score
		}
		return all[i].period < all[j].period
	})
	out := make([]int, len(all))
	for i, sc := range all {
		out[i] = sc.period
	}
	return out, nil
}

// RenderQuality prints the cross-method rows grouped by method.
func RenderQuality(w io.Writer, title string, rows []QualityRow, topK int) error {
	ew := &errWriter{w: w}
	ew.printf("%s\n", title)
	ew.printf("%-18s  %-10s  %8s  %9s  %10s  %10s\n", "method", "noise",
		fmt.Sprintf("hit@%d", topK), fmt.Sprintf("exact@%d", topK), "mean rank", "exact rank")
	for _, r := range rows {
		ew.printf("%-18s  %-10s  %8.2f  %9.2f  %10.1f  %10.1f\n",
			r.Method, fmt.Sprintf("%s %.0f%%", r.Noise, r.Ratio*100),
			r.HitAtK, r.ExactAtK, r.MeanRank, r.ExactRank)
	}
	return ew.err
}
