// Package expr is the experiment harness that regenerates every figure and
// table of the paper's §4: the correctness study of the miner and the
// periodic-trends baseline (Figs. 3 and 4), the head-to-head timing study
// (Fig. 5), the noise-resilience sweep (Fig. 6), and the Wal-Mart/CIMEG
// period and pattern tables (Tables 1–3).
package experiments

import (
	"fmt"
	"sort"
	"time"

	"periodica/internal/core"
	"periodica/internal/gen"
	"periodica/internal/query"
	"periodica/internal/series"
	"periodica/internal/trends"
)

// ConfidenceFunc builds, for one series, a function answering "with what
// confidence is p a period of this series?". The miner's and the trends
// baseline's notions of confidence both fit this shape, which is how §4.1
// compares them.
type ConfidenceFunc func(s *series.Series) (func(p int) float64, error)

// MinerConfidence scores a period by the maximum Definition-1 confidence over
// symbols and positions.
func MinerConfidence() ConfidenceFunc {
	return func(s *series.Series) (func(p int) float64, error) {
		c := core.NewConfidencer(s)
		return c.At, nil
	}
}

// TrendsConfidence scores a period by the trends baseline's normalized rank;
// sketched selects the O(n log² n) sketch estimator over the exact distances.
func TrendsConfidence(sketched bool, repetitions int, seed int64) ConfidenceFunc {
	return func(s *series.Series) (func(p int) float64, error) {
		var r *trends.Ranking
		var err error
		if sketched {
			r, err = trends.Sketched(s, 0, repetitions, seed)
		} else {
			r, err = trends.Exact(s, 0)
		}
		if err != nil {
			return nil, err
		}
		return r.Confidence, nil
	}
}

// CorrectnessConfig drives the Fig. 3 / Fig. 4 study.
type CorrectnessConfig struct {
	Length    int
	Sigma     int
	Periods   []int              // embedded periods, e.g. {25, 32}
	Dists     []gen.Distribution // e.g. {Uniform, Normal}
	Multiples int                // confidence reported at P, 2P, …, Multiples·P
	Multiple  []int              // explicit multiples (overrides Multiples when set)
	Runs      int                // averaging runs per configuration
	Noise     gen.Noise          // zero for the inerrant panel
	Ratio     float64            // noise ratio for the noisy panel
	Seed      int64
}

func (c CorrectnessConfig) withDefaults() CorrectnessConfig {
	if c.Length == 0 {
		c.Length = 100000
	}
	if c.Sigma == 0 {
		c.Sigma = 10
	}
	if len(c.Periods) == 0 {
		c.Periods = []int{25, 32}
	}
	if len(c.Dists) == 0 {
		c.Dists = []gen.Distribution{gen.Uniform, gen.Normal}
	}
	if c.Multiples == 0 {
		c.Multiples = 3
	}
	if len(c.Multiple) == 0 {
		for m := 1; m <= c.Multiples; m++ {
			c.Multiple = append(c.Multiple, m)
		}
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	return c
}

// CorrectnessPoint is one plotted point: the mean confidence at multiple·P
// for one (distribution, period) curve.
type CorrectnessPoint struct {
	Dist       gen.Distribution
	Period     int
	Multiple   int
	Confidence float64
}

// Correctness measures mean confidence at P, 2P, … for every (dist, period)
// combination of cfg, scoring with conf.
func Correctness(cfg CorrectnessConfig, conf ConfidenceFunc) ([]CorrectnessPoint, error) {
	cfg = cfg.withDefaults()
	var out []CorrectnessPoint
	for _, dist := range cfg.Dists {
		for _, period := range cfg.Periods {
			sums := make([]float64, len(cfg.Multiple))
			for run := 0; run < cfg.Runs; run++ {
				s, _, err := gen.Generate(gen.Config{
					Length: cfg.Length, Period: period, Sigma: cfg.Sigma, Dist: dist,
					Noise: cfg.Noise, NoiseRatio: cfg.Ratio,
					Seed: cfg.Seed + int64(run)*7919,
				})
				if err != nil {
					return nil, err
				}
				at, err := conf(s)
				if err != nil {
					return nil, err
				}
				for i, m := range cfg.Multiple {
					sums[i] += at(m * period)
				}
			}
			for i, m := range cfg.Multiple {
				out = append(out, CorrectnessPoint{
					Dist: dist, Period: period, Multiple: m,
					Confidence: sums[i] / float64(cfg.Runs),
				})
			}
		}
	}
	return out, nil
}

// NoiseConfig drives the Fig. 6 resilience sweep.
type NoiseConfig struct {
	Length int
	Sigma  int
	Period int
	Dist   gen.Distribution
	Kinds  []gen.Noise // noise mixtures to sweep
	Ratios []float64   // noise ratios to sweep
	Runs   int
	Seed   int64
}

func (c NoiseConfig) withDefaults() NoiseConfig {
	if c.Length == 0 {
		c.Length = 100000
	}
	if c.Sigma == 0 {
		c.Sigma = 10
	}
	if c.Period == 0 {
		c.Period = 25
	}
	if len(c.Kinds) == 0 {
		c.Kinds = AllNoiseKinds
	}
	if len(c.Ratios) == 0 {
		c.Ratios = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	return c
}

// AllNoiseKinds lists the seven mixtures of Fig. 6.
var AllNoiseKinds = []gen.Noise{
	gen.Replacement,
	gen.Insertion,
	gen.Deletion,
	gen.Replacement | gen.Insertion,
	gen.Replacement | gen.Deletion,
	gen.Insertion | gen.Deletion,
	gen.Replacement | gen.Insertion | gen.Deletion,
}

// NoisePoint is the mean confidence at the embedded period for one noise
// mixture and ratio.
type NoisePoint struct {
	Kind       gen.Noise
	Ratio      float64
	Confidence float64
}

// NoiseResilience measures how the embedded period's confidence degrades
// under each noise mixture and ratio.
func NoiseResilience(cfg NoiseConfig) ([]NoisePoint, error) {
	cfg = cfg.withDefaults()
	var out []NoisePoint
	for _, kind := range cfg.Kinds {
		for _, ratio := range cfg.Ratios {
			sum := 0.0
			for run := 0; run < cfg.Runs; run++ {
				s, _, err := gen.Generate(gen.Config{
					Length: cfg.Length, Period: cfg.Period, Sigma: cfg.Sigma, Dist: cfg.Dist,
					Noise: kind, NoiseRatio: ratio,
					Seed: cfg.Seed + int64(run)*104729,
				})
				if err != nil {
					return nil, err
				}
				sum += core.PeriodConfidence(s, cfg.Period)
			}
			out = append(out, NoisePoint{Kind: kind, Ratio: ratio, Confidence: sum / float64(cfg.Runs)})
		}
	}
	return out, nil
}

// BiasStats quantifies the trends baseline's large-period bias on one noisy
// series: where the true period ranks, what crowds the top of the candidate
// list, and how confidently the miner detects the same period.
type BiasStats struct {
	Universe        int // number of ranked candidate periods (n/2)
	TrueRank        int // candidacy rank of the embedded period
	TopMedian       int // median period value among the top-100 candidates
	MinerConfidence float64
}

// TrendsBias measures BiasStats for one uniform series of the given length
// and embedded period under replacement noise at the given ratio.
func TrendsBias(length, period int, ratio float64, seed int64) (*BiasStats, error) {
	s, _, err := gen.Generate(gen.Config{
		Length: length, Period: period, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: ratio, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	r, err := trends.Sketched(s, 0, 0, seed)
	if err != nil {
		return nil, err
	}
	top := r.Candidates()
	if len(top) > 100 {
		top = top[:100]
	}
	med := append([]int(nil), top...)
	sort.Ints(med)
	return &BiasStats{
		Universe:        r.MaxPeriod,
		TrueRank:        r.Rank(period),
		TopMedian:       med[len(med)/2],
		MinerConfidence: core.PeriodConfidence(s, period),
	}, nil
}

// TimingPoint is one size point of the Fig. 5 study.
type TimingPoint struct {
	N          int
	MinerSecs  float64
	TrendsSecs float64
}

// Timing measures the wall-clock time of the miner's period-detection phase
// (DetectCandidates, the O(σ n log n) one-pass-plus-FFT stage, whose output —
// a candidate period set — matches what the trends baseline produces) against
// the trends baseline's O(n log² n) sketch, over the given input sizes.
// source builds the series for a size.
func Timing(sizes []int, source func(n int) (*series.Series, error)) ([]TimingPoint, error) {
	var out []TimingPoint
	for _, n := range sizes {
		s, err := source(n)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := core.DetectCandidates(s, 0.8, 0); err != nil {
			return nil, err
		}
		minerSecs := time.Since(start).Seconds()

		start = time.Now()
		if _, err := trends.Sketched(s, 0, 0, 1); err != nil {
			return nil, err
		}
		trendsSecs := time.Since(start).Seconds()

		out = append(out, TimingPoint{N: s.Len(), MinerSecs: minerSecs, TrendsSecs: trendsSecs})
	}
	return out, nil
}

// PeriodRow is one row of Table 1: the periods detected at one threshold.
type PeriodRow struct {
	ThresholdPct int
	NumPeriods   int
	Sample       []int // up to the first few detected periods
}

// PeriodTable reproduces Table 1 for one series: for each threshold
// (descending percentages), the number of detected candidate periods and a
// small sample of them. Best confidences per period are computed once and
// every row is sliced out of that single sweep.
func PeriodTable(s *series.Series, thresholdsPct []int, maxPeriod, sampleSize int) ([]PeriodRow, error) {
	if len(thresholdsPct) == 0 {
		return nil, fmt.Errorf("expr: no thresholds")
	}
	for _, t := range thresholdsPct {
		if t < 1 || t > 100 {
			return nil, fmt.Errorf("expr: threshold %d%% outside [1,100]", t)
		}
	}
	best, err := core.BestConfidences(s, maxPeriod)
	if err != nil {
		return nil, err
	}
	var rows []PeriodRow
	for _, pct := range thresholdsPct {
		row := PeriodRow{ThresholdPct: pct}
		psi := float64(pct) / 100
		for p := 1; p < len(best); p++ {
			if best[p] >= psi {
				row.NumPeriods++
				if len(row.Sample) < sampleSize {
					row.Sample = append(row.Sample, p)
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SinglePatternRow is one row of Table 2: the periodic single-symbol patterns
// at a fixed period for one threshold, rendered as the paper's (symbol,
// position) pairs.
type SinglePatternRow struct {
	ThresholdPct int
	Patterns     []string
}

// SinglePatternTable reproduces Table 2 for one series and period.
func SinglePatternTable(s *series.Series, period int, thresholdsPct []int) ([]SinglePatternRow, error) {
	opt, err := core.OptionsFromSpec(query.Spec{
		Threshold: 0.01, MinPeriod: period, MaxPeriod: period,
		Engine: query.EngineBitset, MaxPatternPeriod: -1,
	})
	if err != nil {
		return nil, err
	}
	res, err := core.Mine(s, opt)
	if err != nil {
		return nil, err
	}
	var rows []SinglePatternRow
	for _, pct := range thresholdsPct {
		psi := float64(pct) / 100
		row := SinglePatternRow{ThresholdPct: pct}
		for _, sp := range res.Periodicities {
			if sp.Confidence >= psi {
				row.Patterns = append(row.Patterns,
					fmt.Sprintf("(%s,%d)", s.Alphabet().Symbol(sp.Symbol), sp.Position))
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PatternRow is one row of Table 3: a multi-symbol periodic pattern with its
// support.
type PatternRow struct {
	Pattern    string
	SupportPct float64
}

// PatternTable reproduces Table 3: the multi-symbol periodic patterns of one
// period at one threshold, most supported first.
func PatternTable(s *series.Series, period int, psi float64, maxPatterns int) ([]PatternRow, error) {
	opt, err := core.OptionsFromSpec(query.Spec{
		Threshold: psi, MinPeriod: period, MaxPeriod: period,
		Engine: query.EngineBitset, MaxPatternPeriod: period, MaxPatterns: maxPatterns,
	})
	if err != nil {
		return nil, err
	}
	res, err := core.Mine(s, opt)
	if err != nil {
		return nil, err
	}
	var rows []PatternRow
	for _, pt := range res.Patterns {
		rows = append(rows, PatternRow{
			Pattern:    pt.Render(s.Alphabet()),
			SupportPct: pt.Support * 100,
		})
	}
	return rows, nil
}
