package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"periodica/internal/conv"
	"periodica/internal/core"
	"periodica/internal/gen"
	"periodica/internal/query"
	"periodica/internal/trends"
)

// EngineRow times one full mining job (detection + patterns) under each
// engine at one input size.
type EngineRow struct {
	N            int
	NaiveSecs    float64 // NaN when skipped (too large)
	BitsetSecs   float64
	FFTSecs      float64
	ParallelSecs float64 // MineParallel with all CPUs
}

// EngineAblation times Mine under the naive, bitset and FFT engines and the
// parallel miner, over the given sizes. The naive engine is skipped above
// naiveLimit (0 = always run).
func EngineAblation(sizes []int, psi float64, naiveLimit int, seed int64) ([]EngineRow, error) {
	var out []EngineRow
	for _, n := range sizes {
		s, _, err := gen.Generate(gen.Config{Length: n, Period: 25, Sigma: 10, Dist: gen.Uniform,
			Noise: gen.Replacement, NoiseRatio: 0.1, Seed: seed})
		if err != nil {
			return nil, err
		}
		row := EngineRow{N: n, NaiveSecs: math.NaN()}
		timeIt := func(engine string) (float64, error) {
			opt, err := core.OptionsFromSpec(query.Spec{Threshold: psi, Engine: engine, MaxPatternPeriod: 64})
			if err != nil {
				return 0, err
			}
			start := time.Now()
			_, err = core.Mine(s, opt)
			return time.Since(start).Seconds(), err
		}
		if naiveLimit == 0 || n <= naiveLimit {
			if row.NaiveSecs, err = timeIt(query.EngineNaive); err != nil {
				return nil, err
			}
		}
		if row.BitsetSecs, err = timeIt(query.EngineBitset); err != nil {
			return nil, err
		}
		if row.FFTSecs, err = timeIt(query.EngineFFT); err != nil {
			return nil, err
		}
		popt, err := core.OptionsFromSpec(query.Spec{Threshold: psi, MaxPatternPeriod: 64})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := core.MineParallel(s, popt, 0); err != nil {
			return nil, err
		}
		row.ParallelSecs = time.Since(start).Seconds()
		out = append(out, row)
	}
	return out, nil
}

// RenderEngineAblation prints the engine timing rows.
func RenderEngineAblation(w io.Writer, title string, rows []EngineRow) error {
	ew := &errWriter{w: w}
	ew.printf("%s\n", title)
	ew.printf("%10s  %10s  %10s  %10s  %10s\n", "n", "naive (s)", "bitset (s)", "fft (s)", "parallel")
	for _, r := range rows {
		naive := "-"
		if !math.IsNaN(r.NaiveSecs) {
			naive = fmt.Sprintf("%.4f", r.NaiveSecs)
		}
		ew.printf("%10d  %10s  %10.4f  %10.4f  %10.4f\n", r.N, naive, r.BitsetSecs, r.FFTSecs, r.ParallelSecs)
	}
	return ew.err
}

// SketchRow reports the trends sketch's accuracy/cost trade-off at one
// repetition count.
type SketchRow struct {
	Repetitions int
	MeanRelErr  float64
	Secs        float64
}

// SketchAblation measures the sketched trends estimator against the exact
// distances across repetition counts.
func SketchAblation(length int, repetitions []int, seed int64) ([]SketchRow, error) {
	s, _, err := gen.Generate(gen.Config{Length: length, Period: 25, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.2, Seed: seed})
	if err != nil {
		return nil, err
	}
	exact, err := trends.Exact(s, 0)
	if err != nil {
		return nil, err
	}
	var out []SketchRow
	for _, reps := range repetitions {
		start := time.Now()
		sk, err := trends.Sketched(s, 0, reps, seed)
		if err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()
		var relSum float64
		var count int
		for p := 1; p <= exact.MaxPeriod; p++ {
			if exact.Distances[p] < 1 {
				continue
			}
			relSum += math.Abs(sk.Distances[p]-exact.Distances[p]) / exact.Distances[p]
			count++
		}
		if count == 0 {
			return nil, fmt.Errorf("expr: no measurable distances")
		}
		out = append(out, SketchRow{Repetitions: reps, MeanRelErr: relSum / float64(count), Secs: secs})
	}
	return out, nil
}

// RenderSketchAblation prints the sketch accuracy/cost rows.
func RenderSketchAblation(w io.Writer, title string, rows []SketchRow) error {
	ew := &errWriter{w: w}
	ew.printf("%s\n", title)
	ew.printf("%12s  %14s  %10s\n", "repetitions", "mean rel err", "time (s)")
	for _, r := range rows {
		ew.printf("%12d  %13.2f%%  %10.4f\n", r.Repetitions, r.MeanRelErr*100, r.Secs)
	}
	return ew.err
}

// PruneRow reports the FFT engine's prune effectiveness at one threshold and
// MinPairs requirement.
type PruneRow struct {
	ThresholdPct int
	MinPairs     int
	Survivors    int // (period, symbol) pairs needing phase resolution
	Total        int // all (period, symbol) pairs examined
}

// PruneAblation counts how many (period, symbol) pairs survive the sound
// aggregate prune — the work the FFT engine avoids — across thresholds and
// MinPairs requirements. With the paper's MinPairs = 1 semantics almost
// nothing at large periods is prunable (a single match at a two-slot
// projection reaches confidence 1); requiring statistical mass restores the
// prune's bite.
func PruneAblation(length int, thresholdsPct, minPairs []int, seed int64) ([]PruneRow, error) {
	s, _, err := gen.Generate(gen.Config{Length: length, Period: 25, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.2, Seed: seed})
	if err != nil {
		return nil, err
	}
	lag := conv.LagMatchCounts(s)
	n := s.Len()
	var out []PruneRow
	for _, mp := range minPairs {
		for _, pct := range thresholdsPct {
			psi := float64(pct) / 100
			row := PruneRow{ThresholdPct: pct, MinPairs: mp}
			for p := 1; p <= n/2; p++ {
				floor := n/p - 1 // ⌈(n−(p−1))/p⌉ − 1, the smallest denominator
				if floor < mp {
					floor = mp
				}
				maxPairs := (n+p-1)/p - 1 // denominator at position 0
				for k := range lag {
					row.Total++
					if maxPairs < mp {
						continue // period skipped outright
					}
					if float64(lag[k][p]) >= psi*float64(floor) {
						row.Survivors++
					}
				}
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// RenderPruneAblation prints the prune effectiveness rows.
func RenderPruneAblation(w io.Writer, title string, rows []PruneRow) error {
	ew := &errWriter{w: w}
	ew.printf("%s\n", title)
	ew.printf("%10s  %9s  %12s  %12s  %10s\n", "threshold", "minPairs", "survivors", "total", "resolved")
	for _, r := range rows {
		frac := float64(r.Survivors) / float64(r.Total)
		ew.printf("%9d%%  %9d  %12d  %12d  %9.1f%%\n", r.ThresholdPct, r.MinPairs, r.Survivors, r.Total, frac*100)
	}
	return ew.err
}
