package experiments

import (
	"os"
	"testing"

	"periodica/internal/core"
	"periodica/internal/gen"
	"periodica/internal/trends"
)

// TestPaperScaleSmoke exercises the paper's actual scale — 1M symbols,
// σ = 10 — end to end: inerrant confidence must be exactly 1 at P and its
// multiples, 50% replacement noise must land at the paper's ~0.4 operating
// point, and both detection phases must complete. Gated behind
// PERIODICA_LARGE=1 to keep the default suite fast.
func TestPaperScaleSmoke(t *testing.T) {
	if os.Getenv("PERIODICA_LARGE") == "" {
		t.Skip("set PERIODICA_LARGE=1 to run the 1M-symbol smoke test")
	}
	const n = 1_000_000

	s, _, err := gen.Generate(gen.Config{Length: n, Period: 25, Sigma: 10, Dist: gen.Uniform, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{25, 50, 75} {
		if conf := core.PeriodConfidence(s, p); conf != 1 {
			t.Fatalf("inerrant confidence at %d = %v, want 1", p, conf)
		}
	}

	noisy, _, err := gen.Generate(gen.Config{Length: n, Period: 25, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	conf := core.PeriodConfidence(noisy, 25)
	if conf < 0.35 || conf > 0.5 {
		t.Fatalf("50%% noise confidence %v, want ≈0.4 (paper's operating point)", conf)
	}

	if _, err := core.DetectCandidates(noisy, 0.8, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := trends.Sketched(noisy, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
}
