package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderCorrectness writes the Fig. 3 / Fig. 4 points as one curve per
// (distribution, period) with a column per multiple of P.
func RenderCorrectness(w io.Writer, title string, points []CorrectnessPoint) error {
	ew := &errWriter{w: w}
	ew.printf("%s\n", title)
	type key struct {
		dist   string
		period int
	}
	curves := map[key]map[int]float64{}
	var keys []key
	var mults []int
	seenMult := map[int]bool{}
	for _, pt := range points {
		k := key{pt.Dist.String(), pt.Period}
		if curves[k] == nil {
			curves[k] = map[int]float64{}
			keys = append(keys, k)
		}
		curves[k][pt.Multiple] = pt.Confidence
		if !seenMult[pt.Multiple] {
			seenMult[pt.Multiple] = true
			mults = append(mults, pt.Multiple)
		}
	}
	sort.Ints(mults)
	ew.printf("%-12s", "curve")
	for _, m := range mults {
		ew.printf("  %6s", fmt.Sprintf("%dP", m))
	}
	ew.println()
	for _, k := range keys {
		ew.printf("%-12s", fmt.Sprintf("%s, P=%d", k.dist, k.period))
		for _, m := range mults {
			ew.printf("  %6.3f", curves[k][m])
		}
		ew.println()
	}
	return ew.err
}

// RenderNoise writes the Fig. 6 sweep as one row per noise mixture with a
// column per ratio.
func RenderNoise(w io.Writer, title string, points []NoisePoint) error {
	ew := &errWriter{w: w}
	ew.printf("%s\n", title)
	var ratios []float64
	seen := map[float64]bool{}
	rows := map[string]map[float64]float64{}
	var order []string
	for _, pt := range points {
		if !seen[pt.Ratio] {
			seen[pt.Ratio] = true
			ratios = append(ratios, pt.Ratio)
		}
		k := pt.Kind.String()
		if rows[k] == nil {
			rows[k] = map[float64]float64{}
			order = append(order, k)
		}
		rows[k][pt.Ratio] = pt.Confidence
	}
	sort.Float64s(ratios)
	ew.printf("%-8s", "noise")
	for _, r := range ratios {
		ew.printf("  %6.0f%%", r*100)
	}
	ew.println()
	for _, k := range order {
		ew.printf("%-8s", k)
		for _, r := range ratios {
			ew.printf("  %7.3f", rows[k][r])
		}
		ew.println()
	}
	return ew.err
}

// RenderTiming writes the Fig. 5 points (log-log in the paper; plain columns
// here).
func RenderTiming(w io.Writer, title string, points []TimingPoint) error {
	ew := &errWriter{w: w}
	ew.printf("%s\n", title)
	ew.printf("%12s  %14s  %14s  %8s\n", "n (symbols)", "miner (s)", "trends (s)", "speedup")
	for _, pt := range points {
		speedup := 0.0
		if pt.MinerSecs > 0 {
			speedup = pt.TrendsSecs / pt.MinerSecs
		}
		ew.printf("%12d  %14.4f  %14.4f  %7.2fx\n", pt.N, pt.MinerSecs, pt.TrendsSecs, speedup)
	}
	return ew.err
}

// RenderPeriodTable writes Table 1 rows.
func RenderPeriodTable(w io.Writer, title string, rows []PeriodRow) error {
	ew := &errWriter{w: w}
	ew.printf("%s\n", title)
	ew.printf("%10s  %9s  %s\n", "threshold", "# periods", "some periods")
	for _, row := range rows {
		var sample []string
		for _, p := range row.Sample {
			sample = append(sample, fmt.Sprintf("%d", p))
		}
		ew.printf("%9d%%  %9d  %s\n", row.ThresholdPct, row.NumPeriods, strings.Join(sample, ", "))
	}
	return ew.err
}

// RenderSinglePatternTable writes Table 2 rows.
func RenderSinglePatternTable(w io.Writer, title string, rows []SinglePatternRow) error {
	ew := &errWriter{w: w}
	ew.printf("%s\n", title)
	ew.printf("%10s  %10s  %s\n", "threshold", "# patterns", "patterns")
	for _, row := range rows {
		ew.printf("%9d%%  %10d  %s\n", row.ThresholdPct, len(row.Patterns), strings.Join(row.Patterns, " "))
	}
	return ew.err
}

// RenderPatternTable writes Table 3 rows.
func RenderPatternTable(w io.Writer, title string, rows []PatternRow) error {
	ew := &errWriter{w: w}
	ew.printf("%s\n", title)
	ew.printf("%-32s  %s\n", "periodic pattern", "support")
	for _, row := range rows {
		ew.printf("%-32s  %6.2f%%\n", row.Pattern, row.SupportPct)
	}
	return ew.err
}
