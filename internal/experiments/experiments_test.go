package experiments

import (
	"strings"
	"testing"

	"periodica/internal/cimeg"
	"periodica/internal/gen"
	"periodica/internal/series"
	"periodica/internal/walmart"
)

var quickCorrectness = CorrectnessConfig{
	Length: 4000, Sigma: 10, Periods: []int{25, 32},
	Dists:     []gen.Distribution{gen.Uniform, gen.Normal},
	Multiples: 3, Runs: 2, Seed: 1,
}

func TestCorrectnessInerrantMinerIsPerfect(t *testing.T) {
	// Fig. 3(a): every point of every curve must be exactly 1 on inerrant
	// data.
	points, err := Correctness(quickCorrectness, MinerConfidence())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*2*3 {
		t.Fatalf("got %d points, want 12", len(points))
	}
	for _, pt := range points {
		if pt.Confidence != 1 {
			t.Fatalf("inerrant %v P=%d %dP: confidence %v, want 1", pt.Dist, pt.Period, pt.Multiple, pt.Confidence)
		}
	}
}

func TestCorrectnessNoisyMinerStaysHigh(t *testing.T) {
	// Fig. 3(b): confidences drop under noise but remain above ~0.7, without
	// bias across multiples. Replacement noise is the regime of that figure;
	// insertion/deletion shift every later position and are studied
	// separately in Fig. 6, where the paper itself reports poor confidence.
	cfg := quickCorrectness
	cfg.Noise = gen.Replacement
	cfg.Ratio = 0.2
	points, err := Correctness(cfg, MinerConfidence())
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if pt.Confidence >= 1 {
			t.Fatalf("noisy point still at 1: %+v", pt)
		}
		if pt.Confidence < 0.6 {
			t.Fatalf("noisy confidence collapsed: %+v", pt)
		}
	}
}

func TestCorrectnessTrendsBiasTowardLargePeriods(t *testing.T) {
	// Fig. 4(b): on noisy data the trends baseline favors larger multiples —
	// the normalized rank at 3P must not fall below the one at P.
	cfg := quickCorrectness
	cfg.Noise = gen.Replacement
	cfg.Ratio = 0.3
	cfg.Runs = 3
	points, err := Correctness(cfg, TrendsConfidence(false, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	byMult := map[int]float64{}
	for _, pt := range points {
		byMult[pt.Multiple] += pt.Confidence
	}
	if byMult[3] < byMult[1] {
		t.Fatalf("trends confidence at 3P (%v) below P (%v): bias not reproduced", byMult[3], byMult[1])
	}
}

func TestCorrectnessTrendsInerrantHighAtTruePeriod(t *testing.T) {
	// Fig. 4(a): on inerrant data the trends baseline also ranks P and its
	// multiples near the top.
	points, err := Correctness(quickCorrectness, TrendsConfidence(false, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if pt.Confidence < 0.95 {
			t.Fatalf("inerrant trends confidence %v at %+v", pt.Confidence, pt)
		}
	}
}

func TestNoiseResilienceShape(t *testing.T) {
	// Fig. 6: replacement noise degrades confidence most gently; confidence
	// decreases with the ratio.
	points, err := NoiseResilience(NoiseConfig{
		Length: 4000, Sigma: 10, Period: 25, Dist: gen.Uniform,
		Kinds:  []gen.Noise{gen.Replacement, gen.Insertion | gen.Deletion},
		Ratios: []float64{0.1, 0.4},
		Runs:   2, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	conf := map[string]map[float64]float64{}
	for _, pt := range points {
		if conf[pt.Kind.String()] == nil {
			conf[pt.Kind.String()] = map[float64]float64{}
		}
		conf[pt.Kind.String()][pt.Ratio] = pt.Confidence
	}
	r := conf["R"]
	if r[0.4] > r[0.1] {
		t.Fatalf("replacement confidence increased with noise: %v", r)
	}
	if r[0.4] < conf["I+D"][0.4] {
		t.Fatalf("replacement (%v) should tolerate noise better than I+D (%v)", r[0.4], conf["I+D"][0.4])
	}
	if r[0.4] < 0.3 {
		t.Fatalf("replacement confidence at 40%% noise = %v, want ≥ 0.3 (paper: ~0.4 threshold usable at 50%%)", r[0.4])
	}
}

func TestTrendsBiasDiagnostic(t *testing.T) {
	// §4.1's Fig. 4(b) claim: under heavy noise the trends baseline ranks
	// the largest periods first (absolute distance shrinks with overlap)
	// while the true period sits mid-pack; the miner still detects it near
	// the paper's 40%-threshold-at-50%-noise operating point.
	stats, err := TrendsBias(20000, 25, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TrueRank < stats.Universe/10 {
		t.Fatalf("true period ranks %d of %d — bias not reproduced", stats.TrueRank, stats.Universe)
	}
	if stats.TopMedian < stats.Universe/2 {
		t.Fatalf("top-100 median period %d not in the large-period half (max %d)", stats.TopMedian, stats.Universe)
	}
	if stats.MinerConfidence < 0.35 {
		t.Fatalf("miner confidence %v at 50%% replacement noise, want ≥ 0.35", stats.MinerConfidence)
	}
}

func TestQualityMinerRanksExactPeriodFirst(t *testing.T) {
	rows, err := Quality(QualityConfig{Length: 4000, Period: 25, Sigma: 10,
		Ratios: []float64{0.3}, Runs: 2, TopK: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]map[string]QualityRow{}
	for _, r := range rows {
		key := r.Noise.String()
		if byMethod[r.Method] == nil {
			byMethod[r.Method] = map[string]QualityRow{}
		}
		byMethod[r.Method][key] = r
	}
	miner := byMethod["miner (p-value)"]["R"]
	if miner.ExactAtK != 1 || miner.ExactRank != 1 {
		t.Fatalf("miner exact rank %+v, want rank 1 at 30%% noise", miner)
	}
	// The trends baseline must show its bias: the exact period ranks worse
	// than the miner's.
	tr := byMethod["trends (sketch)"]["R"]
	if tr.ExactRank <= miner.ExactRank {
		t.Fatalf("trends exact rank %v not worse than miner %v — bias not visible", tr.ExactRank, miner.ExactRank)
	}
}

func TestTimingProducesPositiveTimes(t *testing.T) {
	points, err := Timing([]int{2000, 4000}, func(n int) (*series.Series, error) {
		s, _, err := gen.Generate(gen.Config{Length: n, Period: 25, Sigma: 5, Dist: gen.Uniform, Seed: 3})
		return s, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, pt := range points {
		if pt.MinerSecs <= 0 || pt.TrendsSecs <= 0 {
			t.Fatalf("non-positive timing: %+v", pt)
		}
	}
}

func TestPeriodTableWalmart(t *testing.T) {
	s := walmart.Series(walmart.Config{Months: 3, Seed: 4})
	rows, err := PeriodTable(s, []int{90, 70, 50}, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Monotone: lower thresholds admit at least as many periods.
	if rows[1].NumPeriods < rows[0].NumPeriods || rows[2].NumPeriods < rows[1].NumPeriods {
		t.Fatalf("period counts not monotone: %+v", rows)
	}
	// Table 1: period 24 detected at 70% or less.
	found := false
	for _, sp := range rows[1].Sample {
		if sp == 24 {
			found = true
		}
	}
	if !found && rows[1].NumPeriods <= 5 {
		t.Fatalf("period 24 not in 70%% sample: %+v", rows[1])
	}
}

func TestPeriodTableValidates(t *testing.T) {
	s := cimeg.Series(cimeg.Config{Days: 100, Seed: 5})
	if _, err := PeriodTable(s, nil, 40, 5); err == nil {
		t.Fatal("no thresholds: want error")
	}
	if _, err := PeriodTable(s, []int{0}, 40, 5); err == nil {
		t.Fatal("threshold 0: want error")
	}
	if _, err := PeriodTable(s, []int{101}, 40, 5); err == nil {
		t.Fatal("threshold 101: want error")
	}
}

func TestSinglePatternTableCimeg(t *testing.T) {
	s := cimeg.Series(cimeg.Config{Days: 365, Seed: 6})
	rows, err := SinglePatternTable(s, 7, []int{90, 70, 50, 30})
	if err != nil {
		t.Fatal(err)
	}
	// Nesting: patterns at a higher threshold are included at lower ones.
	for i := 1; i < len(rows); i++ {
		prev := map[string]bool{}
		for _, p := range rows[i].Patterns {
			prev[p] = true
		}
		for _, p := range rows[i-1].Patterns {
			if !prev[p] {
				t.Fatalf("pattern %s at %d%% missing at %d%%", p, rows[i-1].ThresholdPct, rows[i].ThresholdPct)
			}
		}
	}
	// The away-day pattern (a,3) must appear by 40%.
	last := rows[len(rows)-1]
	found := false
	for _, p := range last.Patterns {
		if p == "(a,3)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("(a,3) missing at %d%%: %v", last.ThresholdPct, last.Patterns)
	}
}

func TestPatternTableWalmart(t *testing.T) {
	s := walmart.Series(walmart.Config{Months: 15, Seed: 7})
	rows, err := PatternTable(s, 24, 0.35, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no multi-symbol patterns at ψ=35% (paper's Table 3 setting)")
	}
	for _, row := range rows {
		if row.SupportPct < 35 {
			t.Fatalf("pattern %s below threshold: %v%%", row.Pattern, row.SupportPct)
		}
		if len(row.Pattern) != 24 {
			t.Fatalf("pattern %q not of period length 24", row.Pattern)
		}
	}
}

func TestRenderers(t *testing.T) {
	var b strings.Builder
	RenderCorrectness(&b, "fig3a", []CorrectnessPoint{
		{Dist: gen.Uniform, Period: 25, Multiple: 1, Confidence: 1},
		{Dist: gen.Uniform, Period: 25, Multiple: 2, Confidence: 0.9},
	})
	if !strings.Contains(b.String(), "U, P=25") || !strings.Contains(b.String(), "1.000") {
		t.Fatalf("RenderCorrectness output:\n%s", b.String())
	}

	b.Reset()
	RenderNoise(&b, "fig6", []NoisePoint{{Kind: gen.Replacement, Ratio: 0.1, Confidence: 0.8}})
	if !strings.Contains(b.String(), "R") || !strings.Contains(b.String(), "0.800") {
		t.Fatalf("RenderNoise output:\n%s", b.String())
	}

	b.Reset()
	RenderTiming(&b, "fig5", []TimingPoint{{N: 1000, MinerSecs: 0.5, TrendsSecs: 1.0}})
	if !strings.Contains(b.String(), "2.00x") {
		t.Fatalf("RenderTiming output:\n%s", b.String())
	}

	b.Reset()
	RenderPeriodTable(&b, "t1", []PeriodRow{{ThresholdPct: 90, NumPeriods: 2, Sample: []int{24, 168}}})
	if !strings.Contains(b.String(), "24, 168") {
		t.Fatalf("RenderPeriodTable output:\n%s", b.String())
	}

	b.Reset()
	RenderSinglePatternTable(&b, "t2", []SinglePatternRow{{ThresholdPct: 80, Patterns: []string{"(b,7)"}}})
	if !strings.Contains(b.String(), "(b,7)") {
		t.Fatalf("RenderSinglePatternTable output:\n%s", b.String())
	}

	b.Reset()
	RenderPatternTable(&b, "t3", []PatternRow{{Pattern: "aaa***", SupportPct: 42.5}})
	if !strings.Contains(b.String(), "42.50%") {
		t.Fatalf("RenderPatternTable output:\n%s", b.String())
	}
}
