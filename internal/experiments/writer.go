package experiments

import (
	"fmt"
	"io"
)

// errWriter latches the first write error so the renderers can format
// a whole report with one error check at the end instead of one per
// line. After a failure every further print is a no-op.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

func (ew *errWriter) println(args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintln(ew.w, args...)
}
