package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"periodica/internal/obs"
)

func TestRunCoversEveryItemSerial(t *testing.T) {
	s := New(Config{Workers: 1})
	var got []int
	err := s.Run(10, 0, func(w int) func(i int) error {
		return func(i int) error {
			got = append(got, i)
			return nil
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("serial Run out of order at %d: got %d", i, v)
		}
	}
	if len(got) != 10 {
		t.Fatalf("serial Run covered %d of 10 items", len(got))
	}
}

func TestRunCoversEveryItemParallel(t *testing.T) {
	s := New(Config{Workers: 4})
	var seen [100]atomic.Int32
	err := s.Run(100, 0, func(w int) func(i int) error {
		return func(i int) error {
			seen[i].Add(1)
			return nil
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("item %d processed %d times", i, n)
		}
	}
}

func TestRunLatchesFirstErrorAndDrains(t *testing.T) {
	s := New(Config{Workers: 4})
	boom := errors.New("boom")
	var after atomic.Int32
	err := s.Run(50, 0, func(w int) func(i int) error {
		return func(i int) error {
			if i == 3 {
				return boom
			}
			if s.Err() != nil {
				after.Add(1) // should not happen: Poll gates each item
			}
			return nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want boom", err)
	}
	if s.Err() != err {
		t.Fatalf("latched %v, want %v", s.Err(), err)
	}
	if after.Load() != 0 {
		t.Fatalf("%d items ran after the error latched", after.Load())
	}
}

func TestPollLatchesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := New(Config{Cancel: ctx.Err})
	if err := s.Poll(); err != nil {
		t.Fatalf("Poll before cancel: %v", err)
	}
	cancel()
	if err := s.Poll(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Poll after cancel = %v", err)
	}
	// The error stays latched even if the source were to recover.
	if err := s.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v", err)
	}
}

func TestTickPollsOnBoundary(t *testing.T) {
	polls := 0
	s := New(Config{PollEvery: 100, Cancel: func() error {
		polls++
		return nil
	}})
	for i := 0; i < 10; i++ {
		if err := s.Tick(35); err != nil {
			t.Fatalf("Tick: %v", err)
		}
	}
	// 350 steps at PollEvery=100 crosses three boundaries.
	if polls != 3 {
		t.Fatalf("cancel polled %d times over 350 steps, want 3", polls)
	}
	if s.Steps() != 350 {
		t.Fatalf("Steps = %d, want 350", s.Steps())
	}
}

func TestTickEnforcesStepBudget(t *testing.T) {
	s := New(Config{MaxSteps: 100})
	if err := s.Tick(100); err != nil {
		t.Fatalf("Tick within budget: %v", err)
	}
	if err := s.Tick(1); !errors.Is(err, ErrStepBudget) {
		t.Fatalf("Tick over budget = %v, want ErrStepBudget", err)
	}
	// The budget error is latched: Run refuses to start new work.
	err := s.Run(5, 1, func(w int) func(i int) error {
		return func(i int) error {
			t.Fatal("item ran after budget exhaustion")
			return nil
		}
	})
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("Run after budget = %v", err)
	}
}

func TestRunCancelledMidwayDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := New(Config{Workers: 1, Cancel: ctx.Err})
	done := 0
	err := s.Run(10, 1, func(w int) func(i int) error {
		return func(i int) error {
			done++
			if i == 4 {
				cancel()
			}
			return nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want Canceled", err)
	}
	if done != 5 {
		t.Fatalf("%d items ran, want 5 (cancel polled before each item)", done)
	}
}

func TestRunQueueDepthReturnsToZero(t *testing.T) {
	met := obs.Exec()
	s := New(Config{Workers: 4, Metrics: met})
	err := s.Run(64, 0, func(w int) func(i int) error {
		return func(i int) error { return nil }
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d := met.QueueDepth().Value(); d != 0 {
		t.Fatalf("queue depth after Run = %d, want 0", d)
	}
}

func TestGate(t *testing.T) {
	g := NewGate(2)
	if g.Capacity() != 2 {
		t.Fatalf("Capacity = %d", g.Capacity())
	}
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("could not fill the gate")
	}
	if g.TryAcquire() {
		t.Fatal("acquired beyond capacity")
	}
	if g.InUse() != 2 {
		t.Fatalf("InUse = %d", g.InUse())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("slot not reusable after Release")
	}
	if NewGate(0).Capacity() != 1 {
		t.Fatal("zero-slot gate should clamp to one")
	}
}
