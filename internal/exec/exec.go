// Package exec is the execution seam of the mining pipeline: a bounded
// worker pool that shards per-symbol and per-period-band work, meters
// progress against an optional per-run step budget, and is the single place
// cooperative cancellation is polled. The mining stages in internal/core and
// the batched FFT driver in internal/conv submit their work here instead of
// spinning up ad-hoc goroutine pools or sprinkling every-N-iterations
// cancellation checks of their own, so batch, streaming, incremental, and
// out-of-core mines all cancel, shard, and meter the same way.
package exec

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"periodica/internal/obs"
)

// ErrStepBudget is returned (and latched) once a scheduler's step budget is
// exhausted; the run aborts the way a cancelled context would.
var ErrStepBudget = errors.New("exec: step budget exhausted")

// DefaultPollEvery is the default number of steps between cancellation
// polls. Cancellation sources (ctx.Err) take a mutex, so polling them on
// every step of a hot loop would dominate; every few hundred steps keeps the
// latency of a cancelled mine far below human-visible while costing nothing
// measurable.
const DefaultPollEvery = 256

// Config configures a Scheduler.
type Config struct {
	// Workers bounds the goroutines a Run may use when the caller does not
	// pick its own width; 0 or negative means GOMAXPROCS.
	Workers int
	// Cancel, when non-nil, is the cancellation source (for context-aware
	// entry points it is ctx.Err). Its first non-nil return is latched and
	// aborts every subsequent Poll, Tick, and Run.
	Cancel func() error
	// PollEvery is the step interval between Cancel polls inside Tick;
	// 0 means DefaultPollEvery.
	PollEvery int
	// MaxSteps, when positive, is the step budget of the run: once Tick has
	// accumulated more than MaxSteps, ErrStepBudget is latched.
	MaxSteps int64
	// Metrics, when non-nil, receives the queue-depth gauge updates.
	Metrics *obs.ExecMetrics
}

// Scheduler coordinates the stages of one run: it owns the worker budget,
// the cancellation source, and the step accounting. A Scheduler is safe for
// concurrent use; the first error (cancellation or budget) is latched and
// every later Poll/Tick/Run observes it.
type Scheduler struct {
	workers   int
	cancel    func() error
	pollEvery int64
	maxSteps  int64
	met       *obs.ExecMetrics
	steps     atomic.Int64
	err       atomic.Pointer[error]
}

// New returns a scheduler for one run.
func New(cfg Config) *Scheduler {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pollEvery := int64(cfg.PollEvery)
	if pollEvery <= 0 {
		pollEvery = DefaultPollEvery
	}
	return &Scheduler{
		workers:   workers,
		cancel:    cfg.Cancel,
		pollEvery: pollEvery,
		maxSteps:  cfg.MaxSteps,
		met:       cfg.Metrics,
	}
}

// Workers returns the scheduler's default worker budget.
func (s *Scheduler) Workers() int { return s.workers }

// Steps returns the number of steps ticked so far.
func (s *Scheduler) Steps() int64 { return s.steps.Load() }

// Err returns the latched error, if any.
func (s *Scheduler) Err() error {
	if p := s.err.Load(); p != nil {
		return *p
	}
	return nil
}

// fail latches err; the first latched error wins.
func (s *Scheduler) fail(err error) {
	s.err.CompareAndSwap(nil, &err)
}

// Poll checks the cancellation source immediately (and the latch), latching
// and returning any error. Stages call it at coarse-grained boundaries —
// between pipeline stages, between occurrence-set builds — where the cost of
// the poll is negligible next to the work it gates.
func (s *Scheduler) Poll() error {
	if err := s.Err(); err != nil {
		return err
	}
	if s.cancel != nil {
		if err := s.cancel(); err != nil {
			s.fail(err)
			return err
		}
	}
	return nil
}

// Tick advances the step count by n, enforcing the step budget and polling
// the cancellation source whenever the count crosses a PollEvery boundary.
// Hot loops call it with their natural batch size (symbols per period, DFS
// steps per chunk) instead of hand-rolling every-N checks.
func (s *Scheduler) Tick(n int64) error {
	if n <= 0 {
		return s.Err()
	}
	t := s.steps.Add(n)
	if s.maxSteps > 0 && t > s.maxSteps {
		err := ErrStepBudget
		s.fail(err)
		return err
	}
	if (t-n)/s.pollEvery != t/s.pollEvery {
		return s.Poll()
	}
	return s.Err()
}

// Run shards items 0..n-1 over a worker pool. worker is invoked once per
// pool goroutine (so it may allocate per-worker scratch) and returns the
// function applied to each item; items are claimed from a shared queue, so
// uneven per-item cost balances automatically. workers ≤ 0 uses the
// scheduler's budget; the pool never exceeds n.
//
// The cancellation source is polled before every item. On cancellation or
// an item error the first error is latched and returned; remaining items
// are drained unprocessed, and callers must discard partial output. With an
// effective width of one the items run inline on the calling goroutine in
// ascending order — the serial entry points shard through the very same
// code path as the parallel ones.
func (s *Scheduler) Run(n, workers int, worker func(w int) func(i int) error) error {
	if n <= 0 {
		return s.Err()
	}
	if workers <= 0 {
		workers = s.workers
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn := worker(0)
		for i := 0; i < n; i++ {
			if err := s.Poll(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				s.fail(err)
				return s.Err()
			}
		}
		return s.Err()
	}
	queue := make(chan int, n)
	if s.met != nil {
		s.met.QueueDepth().Add(int64(n))
	}
	//opvet:ignore ctxpoll sends are bounded by the queue's capacity n and never block
	for i := 0; i < n; i++ {
		queue <- i
	}
	close(queue)
	var wg sync.WaitGroup
	//opvet:ignore ctxpoll spawn loop bounded by the worker count; each worker polls per item
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn := worker(w)
			for i := range queue {
				if s.met != nil {
					s.met.QueueDepth().Dec()
				}
				if s.Poll() != nil {
					continue // drain the queue without processing
				}
				if err := fn(i); err != nil {
					s.fail(err)
				}
			}
		}(w)
	}
	wg.Wait()
	return s.Err()
}

// Gate is a concurrency-admission gate over the same worker-budget notion
// the scheduler uses: n slots, try-acquire semantics. The serving layer
// delegates its admission control here so the request-level limit and the
// engine-level worker budget live in one package.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a gate with n slots (minimum one).
func NewGate(n int) *Gate {
	if n < 1 {
		n = 1
	}
	return &Gate{slots: make(chan struct{}, n)}
}

// TryAcquire takes a slot if one is free, without blocking.
func (g *Gate) TryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a previously acquired slot.
func (g *Gate) Release() { <-g.slots }

// Capacity returns the number of slots.
func (g *Gate) Capacity() int { return cap(g.slots) }

// InUse returns the number of currently held slots.
func (g *Gate) InUse() int { return len(g.slots) }
