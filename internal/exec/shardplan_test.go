package exec

import (
	"reflect"
	"testing"
)

// TestPlanShardsPartition: every plan must cover each (symbol, period) cell
// exactly once — that is what makes the distributed merge a pure
// concatenation.
func TestPlanShardsPartition(t *testing.T) {
	cases := []struct{ sigma, minP, maxP, target int }{
		{1, 1, 1, 1},
		{3, 1, 302, 6},
		{3, 1, 302, 7}, // non-dividing target
		{5, 10, 17, 32},
		{4, 1, 2, 5}, // symbol dimension must split
		{2, 1, 1, 8}, // tiny domain, big target
		{26, 1, 5000, 64},
		{3, 7, 7, 1},
	}
	for _, c := range cases {
		shards := PlanShards(c.sigma, c.minP, c.maxP, c.target)
		if len(shards) == 0 {
			t.Fatalf("PlanShards(%+v) returned no shards", c)
		}
		seen := map[[2]int]int{}
		for i, sh := range shards {
			if sh.ID != i {
				t.Errorf("%+v: shard %d has ID %d, want sequential", c, i, sh.ID)
			}
			if sh.SymbolLo < 0 || sh.SymbolHi > c.sigma || sh.SymbolLo >= sh.SymbolHi {
				t.Errorf("%+v: bad symbol range [%d,%d)", c, sh.SymbolLo, sh.SymbolHi)
			}
			if sh.MinPeriod < c.minP || sh.MaxPeriod > c.maxP || sh.MinPeriod > sh.MaxPeriod {
				t.Errorf("%+v: bad period range [%d,%d]", c, sh.MinPeriod, sh.MaxPeriod)
			}
			for k := sh.SymbolLo; k < sh.SymbolHi; k++ {
				for p := sh.MinPeriod; p <= sh.MaxPeriod; p++ {
					seen[[2]int{k, p}]++
				}
			}
		}
		for k := 0; k < c.sigma; k++ {
			for p := c.minP; p <= c.maxP; p++ {
				if n := seen[[2]int{k, p}]; n != 1 {
					t.Fatalf("%+v: cell (symbol=%d, period=%d) covered %d times", c, k, p, n)
				}
			}
		}
		if span := c.maxP - c.minP + 1; span >= c.target && len(shards) > c.target {
			t.Errorf("%+v: %d shards exceed target %d with span %d", c, len(shards), c.target, span)
		}
	}
}

func TestPlanShardsDeterministic(t *testing.T) {
	a := PlanShards(4, 1, 999, 13)
	b := PlanShards(4, 1, 999, 13)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PlanShards is not deterministic")
	}
}

func TestPlanShardsDegenerate(t *testing.T) {
	if got := PlanShards(0, 1, 10, 4); got != nil {
		t.Errorf("sigma=0: got %v, want nil", got)
	}
	if got := PlanShards(3, 5, 4, 4); got != nil {
		t.Errorf("inverted period range: got %v, want nil", got)
	}
	if got := PlanShards(3, 0, 4, 4); got != nil {
		t.Errorf("minPeriod=0: got %v, want nil", got)
	}
	one := PlanShards(3, 1, 100, 0)
	if len(one) != 1 || one[0].SymbolLo != 0 || one[0].SymbolHi != 3 ||
		one[0].MinPeriod != 1 || one[0].MaxPeriod != 100 {
		t.Errorf("target=0: got %+v, want one whole-domain shard", one)
	}
}
