package exec

// Shard is one unit of distributable mining work: resolve the symbol
// periodicities of symbols [SymbolLo, SymbolHi) over the candidate periods
// [MinPeriod, MaxPeriod]. Shards partition the (symbol × period) domain, so
// the union of their per-period slots is exactly the single-process resolve
// output — the merge is a concatenation plus the canonical result sort, and
// re-delivering a shard (a retried or hedged dispatch) changes nothing as
// long as each shard ID is merged once.
type Shard struct {
	// ID is the shard's index in plan order; coordinators key idempotent
	// merges on it.
	ID int
	// SymbolLo and SymbolHi bound the shard's symbols, half-open.
	SymbolLo, SymbolHi int
	// MinPeriod and MaxPeriod bound the shard's candidate periods, inclusive.
	MinPeriod, MaxPeriod int
}

// PlanShards enumerates a deterministic shard plan over sigma symbols and the
// candidate periods [minPeriod, maxPeriod], aiming for target shards. The
// split is period-major — per-period resolve cost is roughly uniform, and a
// period band reuses one worker's per-symbol precompute across all its
// symbols — so the symbol dimension is split only when there are fewer
// candidate periods than requested shards. The same arguments always yield
// the same plan; IDs are sequential in enumeration order.
//
// The plan has at most target shards when the period span alone can fill the
// target; when the symbol dimension must be split too, the shard count may
// round up to the next full symbol × period grid.
func PlanShards(sigma, minPeriod, maxPeriod, target int) []Shard {
	if sigma < 1 || minPeriod < 1 || maxPeriod < minPeriod {
		return nil
	}
	if target < 1 {
		target = 1
	}
	span := maxPeriod - minPeriod + 1
	periodParts := target
	if periodParts > span {
		periodParts = span
	}
	symParts := 1
	if periodParts < target && sigma > 1 {
		symParts = (target + periodParts - 1) / periodParts
		if symParts > sigma {
			symParts = sigma
		}
	}
	shards := make([]Shard, 0, periodParts*symParts)
	//opvet:ignore ctxpoll plan enumeration bounded by periodParts×symParts, both capped above
	for pi := 0; pi < periodParts; pi++ {
		pLo, pHi := splitRange(minPeriod, span, periodParts, pi)
		//opvet:ignore ctxpoll inner enumeration bounded by symParts, capped at sigma above
		for si := 0; si < symParts; si++ {
			sLo, sHi := splitRange(0, sigma, symParts, si)
			shards = append(shards, Shard{
				ID:       len(shards),
				SymbolLo: sLo, SymbolHi: sHi + 1,
				MinPeriod: pLo, MaxPeriod: pHi,
			})
		}
	}
	return shards
}

// splitRange returns the inclusive bounds of part i when a range of size
// values starting at lo is split into parts contiguous chunks whose sizes
// differ by at most one (earlier parts take the remainder).
func splitRange(lo, size, parts, i int) (int, int) {
	base := size / parts
	rem := size % parts
	start := lo + i*base + min(i, rem)
	length := base
	if i < rem {
		length++
	}
	return start, start + length - 1
}
