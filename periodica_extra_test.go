package periodica_test

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"periodica"
)

func TestIncrementalPublicAPI(t *testing.T) {
	inc, err := periodica.NewIncremental(10, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := inc.Append(string(rune('a' + i%3))); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Len() != 60 {
		t.Fatalf("Len = %d", inc.Len())
	}
	pers, err := inc.Periodicities(1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range pers {
		if sp.Symbol == "a" && sp.Period == 3 && sp.Position == 0 && sp.Confidence == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("(a,3,0) missing: %+v", pers)
	}
	res, err := inc.Mine(periodica.Options{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) == 0 || res.Periods[0] != 3 {
		t.Fatalf("Periods = %v", res.Periods)
	}
}

func TestIncrementalMergePublicAPI(t *testing.T) {
	a, _ := periodica.NewIncremental(8, "x", "y")
	b, _ := periodica.NewIncremental(8, "x", "y")
	whole, _ := periodica.NewIncremental(8, "x", "y")
	stream := strings.Repeat("xyxyxxyy", 8)
	half := len(stream) / 2
	for i, r := range stream {
		target := a
		if i >= half {
			target = b
		}
		if err := target.Append(string(r)); err != nil {
			t.Fatal(err)
		}
		if err := whole.Append(string(r)); err != nil {
			t.Fatal(err)
		}
	}
	// Different alphabet instances: merging across differently-built miners
	// must fail…
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across distinct alphabet instances: want error")
	}
	// …but the combined stream mined directly matches the whole.
	resWhole, err := whole.Periodicities(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(resWhole) == 0 {
		t.Fatal("no periodicities in periodic stream")
	}
}

func TestIncrementalValidatesPublic(t *testing.T) {
	if _, err := periodica.NewIncremental(0, "a"); err == nil {
		t.Fatal("maxPeriod 0: want error")
	}
	if _, err := periodica.NewIncremental(5, "a", "a"); err == nil {
		t.Fatal("duplicate symbols: want error")
	}
	inc, _ := periodica.NewIncremental(5, "a")
	if err := inc.Append("z"); err == nil {
		t.Fatal("unknown symbol: want error")
	}
}

func TestSeriesFileRoundTripAndExternalDetection(t *testing.T) {
	s, err := periodica.NewSeriesFromString(strings.Repeat("abcd", 200))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "series.bin")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := periodica.ReadSeriesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != s.String() {
		t.Fatal("file round trip changed the series")
	}

	onDisk, err := periodica.CandidatePeriodsFile(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := periodica.CandidatePeriods(s, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(onDisk, inMem) {
		t.Fatalf("on-disk %v != in-memory %v", onDisk, inMem)
	}
}

func TestCandidatePeriodsParallelMatchesSerial(t *testing.T) {
	s, err := periodica.NewSeriesFromString(strings.Repeat("aabcbb", 300))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := periodica.CandidatePeriods(s, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := periodica.CandidatePeriodsParallel(s, 0.8, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel candidates differ")
	}
}

func TestCounterPublic(t *testing.T) {
	c, err := periodica.NewCounter(8, "on", "off")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		sym := "on"
		if i%4 != 0 {
			sym = "off"
		}
		if err := c.Append(sym); err != nil {
			t.Fatal(err)
		}
	}
	memAt4000 := c.MemoryBytes()
	for i := 0; i < 40000; i++ {
		_ = c.Append("off")
	}
	if c.MemoryBytes() != memAt4000 {
		t.Fatal("counter memory grew with stream length")
	}
	if c.Len() != 44000 {
		t.Fatalf("Len = %d", c.Len())
	}
	pers, err := c.Periodicities(0.05)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range pers {
		if sp.Symbol == "on" && sp.Period == 4 && sp.Position == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("period-4 on-beat missing from counter answers")
	}
	if err := c.Append("boom"); err == nil {
		t.Fatal("unknown symbol: want error")
	}
	if _, err := periodica.NewCounter(0, "a"); err == nil {
		t.Fatal("maxPeriod 0: want error")
	}
}

func TestDescribePublic(t *testing.T) {
	s, err := periodica.NewSeriesFromString("ababab")
	if err != nil {
		t.Fatal(err)
	}
	sp := periodica.Periodicity{Symbol: "b", Period: 24, Position: 7, Matches: 4, Pairs: 5, Confidence: 0.8}
	got := s.Describe(sp, []string{"zero", "under 200 transactions"}, "hour", "day")
	want := "under 200 transactions occurs in hour 7 of the day for 80% of the cycles"
	if got != want {
		t.Fatalf("Describe = %q, want %q", got, want)
	}
	if got := s.Describe(periodica.Periodicity{Symbol: "z"}, nil, "", ""); got != `unknown symbol "z"` {
		t.Fatalf("unknown symbol: %q", got)
	}
}

func TestMinPairsPublicPassthrough(t *testing.T) {
	// abcab: with MinPairs high enough, the thin large-period periodicities
	// disappear while the well-supported small period stays.
	s, err := periodica.NewSeriesFromString(strings.Repeat("abcab", 20))
	if err != nil {
		t.Fatal(err)
	}
	loose, err := periodica.Mine(s, periodica.Options{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := periodica.Mine(s, periodica.Options{Threshold: 0.9, MinPairs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Periodicities) >= len(loose.Periodicities) {
		t.Fatalf("MinPairs removed nothing: %d vs %d", len(strict.Periodicities), len(loose.Periodicities))
	}
	for _, sp := range strict.Periodicities {
		if sp.Pairs < 10 {
			t.Fatalf("low-mass periodicity survived: %+v", sp)
		}
	}
	has5 := false
	for _, p := range strict.Periods {
		if p == 5 {
			has5 = true
		}
	}
	if !has5 {
		t.Fatal("the embedded period 5 was lost")
	}
}

func TestMineContextPublic(t *testing.T) {
	s, err := periodica.NewSeriesFromString(strings.Repeat("ab", 100))
	if err != nil {
		t.Fatal(err)
	}
	res, err := periodica.MineContext(context.Background(), s, periodica.Options{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) == 0 || res.Periods[0] != 2 {
		t.Fatalf("Periods = %v", res.Periods)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := periodica.MineContext(ctx, s, periodica.Options{Threshold: 0.9}); err == nil {
		t.Fatal("cancelled context: want error")
	}
}

func TestCandidatePeriodsContextPublic(t *testing.T) {
	s, err := periodica.NewSeriesFromString(strings.Repeat("abcd", 50))
	if err != nil {
		t.Fatal(err)
	}
	want, err := periodica.CandidatePeriods(s, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := periodica.CandidatePeriodsContext(context.Background(), s, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CandidatePeriodsContext = %v, want %v", got, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := periodica.CandidatePeriodsContext(ctx, s, 1, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: err = %v, want context.Canceled", err)
	}
}

func TestErrInvalidInputPublic(t *testing.T) {
	s, err := periodica.NewSeriesFromString(strings.Repeat("ab", 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := periodica.Mine(s, periodica.Options{Threshold: 0}); !errors.Is(err, periodica.ErrInvalidInput) {
		t.Fatalf("ψ=0: err = %v, want ErrInvalidInput", err)
	}
	if _, err := periodica.CandidatePeriods(s, 0.5, 1000); !errors.Is(err, periodica.ErrInvalidInput) {
		t.Fatalf("bad maxPeriod: err = %v, want ErrInvalidInput", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := periodica.MineContext(ctx, s, periodica.Options{Threshold: 0.5}); errors.Is(err, periodica.ErrInvalidInput) {
		t.Fatal("cancellation must not classify as invalid input")
	}
}

func TestGridEventsPublic(t *testing.T) {
	start := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	var events []periodica.Event
	for m := 0; m < 600; m += 10 {
		events = append(events, periodica.Event{Time: start.Add(time.Duration(m) * time.Minute), Symbol: "p"})
	}
	s, err := periodica.GridEvents(events, time.Minute, "i")
	if err != nil {
		t.Fatal(err)
	}
	if conf := periodica.PeriodConfidence(s, 10); conf < 0.95 {
		t.Fatalf("period 10 confidence %v from gridded events", conf)
	}
	if _, err := periodica.GridEvents(nil, time.Minute, "i"); err == nil {
		t.Fatal("no events: want error")
	}
}

func TestDiscretizeSAXPublic(t *testing.T) {
	values := make([]float64, 240)
	for i := range values {
		values[i] = 50 + 20*float64(i%12) // strong period-12 sawtooth
	}
	s, err := periodica.DiscretizeSAX(values, periodica.SAXOptions{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 240 || len(s.Alphabet()) != 4 {
		t.Fatalf("len=%d σ=%d", s.Len(), len(s.Alphabet()))
	}
	if conf := periodica.PeriodConfidence(s, 12); conf < 0.9 {
		t.Fatalf("period 12 confidence %v after SAX", conf)
	}
	if _, err := periodica.DiscretizeSAX(nil, periodica.SAXOptions{}); err == nil {
		t.Fatal("empty values: want error")
	}
}

func TestSignificantPublic(t *testing.T) {
	// Strong period-8 structure for symbol a over random other symbols.
	data := make([]byte, 1600)
	rng := []byte("bcd")
	for i := range data {
		data[i] = rng[i%3]
		if i%8 == 0 {
			data[i] = 'a'
		}
	}
	s, err := periodica.NewSeriesFromString(string(data))
	if err != nil {
		t.Fatal(err)
	}
	res, err := periodica.Mine(s, periodica.Options{Threshold: 0.9, MaxPatternPeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	kept, err := periodica.Significant(s, res, 0.01, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) == 0 || len(kept) >= len(res.Periodicities) {
		t.Fatalf("significance kept %d of %d", len(kept), len(res.Periodicities))
	}
	found := false
	for _, sp := range kept {
		if sp.Symbol == "a" && sp.Period == 8 && sp.Position == 0 {
			found = true
			if sp.PValue > 1e-10 {
				t.Fatalf("embedded p-value %v", sp.PValue)
			}
		}
		if sp.Pairs < 2 {
			t.Fatalf("low-mass fluke survived: %+v", sp)
		}
	}
	if !found {
		t.Fatal("embedded periodicity not kept")
	}
	if _, err := periodica.Significant(s, res, 0, false); err == nil {
		t.Fatal("alpha 0: want error")
	}
}

func TestMonitorSlidingWindow(t *testing.T) {
	m, err := periodica.NewMonitor(6, 30, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	feed := func(pattern string, reps int) {
		for i := 0; i < reps; i++ {
			for _, r := range pattern {
				if err := m.Append(string(r)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	feed("abc", 30)
	pers, err := m.Periodicities(0.9)
	if err != nil {
		t.Fatal(err)
	}
	has3 := false
	for _, sp := range pers {
		if sp.Period == 3 {
			has3 = true
		}
	}
	if !has3 {
		t.Fatal("period 3 not visible in window")
	}
	// Regime change: after the window slides fully, the old rhythm is gone.
	feed("ab", 60)
	pers, err = m.Periodicities(0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range pers {
		if sp.Period == 3 && sp.Symbol == "c" {
			t.Fatal("stale period-3 c periodicity survived the window")
		}
	}
	if m.Len() != 30 {
		t.Fatalf("window Len = %d, want 30", m.Len())
	}
}

func TestMonitorValidates(t *testing.T) {
	if _, err := periodica.NewMonitor(5, 5, "a"); err == nil {
		t.Fatal("window ≤ maxPeriod: want error")
	}
	m, _ := periodica.NewMonitor(5, 20, "a")
	if err := m.Append("z"); err == nil {
		t.Fatal("unknown symbol: want error")
	}
}

func TestMineParallelPublicMatchesSerial(t *testing.T) {
	s, err := periodica.NewSeriesFromString(strings.Repeat("abcda", 100))
	if err != nil {
		t.Fatal(err)
	}
	want, err := periodica.Mine(s, periodica.Options{Threshold: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := periodica.MineParallel(s, periodica.Options{Threshold: 0.8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("parallel public Mine differs from serial")
	}
}

func TestMineDatabasePublic(t *testing.T) {
	var db []*periodica.Series
	for i := 0; i < 5; i++ {
		s, err := periodica.NewSeriesFromString(strings.Repeat("abcab", 50))
		if err != nil {
			t.Fatal(err)
		}
		db = append(db, s)
	}
	pats, err := periodica.MineDatabase(db, periodica.Options{Threshold: 0.8, MaxPeriod: 10, MaxPatternPeriod: 10}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) == 0 {
		t.Fatal("no shared patterns")
	}
	found := false
	for _, dp := range pats {
		if dp.Text == "abcab" && dp.Sequences == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("abcab not shared by all 5 sequences: %+v", pats)
	}
}

func TestMineDatabaseMixedAlphabets(t *testing.T) {
	a, _ := periodica.NewSeriesFromString("ababab")
	z, _ := periodica.NewSeriesFromString("zxzxzx")
	if _, err := periodica.MineDatabase([]*periodica.Series{a, z}, periodica.Options{Threshold: 0.5}, 0.5); err == nil {
		t.Fatal("incompatible alphabets: want error")
	}
	if _, err := periodica.MineDatabase(nil, periodica.Options{Threshold: 0.5}, 0.5); err == nil {
		t.Fatal("empty database: want error")
	}
}

func TestFilterMaximalPublic(t *testing.T) {
	s, err := periodica.NewSeriesFromString(strings.Repeat("abc", 8))
	if err != nil {
		t.Fatal(err)
	}
	opt := periodica.Options{Threshold: 0.8, MinPeriod: 3, MaxPeriod: 3}
	full, err := periodica.Mine(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.MaximalOnly = true
	maximal, err := periodica.Mine(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(maximal.Patterns) != 1 || maximal.Patterns[0].Text != "abc" {
		t.Fatalf("maximal patterns = %+v, want [abc]", maximal.Patterns)
	}
	if len(full.Patterns) <= len(maximal.Patterns) {
		t.Fatal("filter removed nothing")
	}
}
