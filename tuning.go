package periodica

import (
	"time"

	"periodica/internal/fft"
)

// Per-host performance tuning. Three crossovers govern the mining hot path —
// where EngineAuto switches from the quadratic scan to the FFT engine, where
// FFT butterfly stages split across goroutines, and where the cache-blocked
// four-step FFT kernel takes over from the fused radix-2/4 kernel. The
// defaults are reasonable pins; Autotune measures the actual crossovers of
// the host with a short calibration sweep. Tuning is purely a performance
// knob: every kernel and engine computes byte-identical results, so tuned
// and untuned processes mine identical periodicities.

// TuneFileEnv is the environment variable naming a tuned-profile JSON file
// to load at startup (see LoadTuneFromEnv): "PERIODICA_TUNE_FILE".
const TuneFileEnv = fft.TuneFileEnv

// Autotune runs a calibration sweep of roughly the given duration (≤ 0 means
// the default ~100ms) and applies the measured thresholds to the process.
func Autotune(budget time.Duration) {
	fft.ApplyTuned(fft.Autotune(budget))
}

// AutotuneToFile is Autotune followed by persisting the measured profile as
// JSON at path, for later LoadTuneFile / PERIODICA_TUNE_FILE use.
func AutotuneToFile(budget time.Duration, path string) error {
	p := fft.Autotune(budget)
	fft.ApplyTuned(p)
	return p.Save(path)
}

// LoadTuneFile loads a profile saved by AutotuneToFile (or the opbench/
// opminer/opserve -autotune flags) and applies its thresholds.
func LoadTuneFile(path string) error {
	p, err := fft.LoadTuned(path)
	if err != nil {
		return err
	}
	fft.ApplyTuned(p)
	return nil
}

// LoadTuneFromEnv applies the profile named by the PERIODICA_TUNE_FILE
// environment variable, reporting whether one was applied; with the variable
// unset it is a no-op.
func LoadTuneFromEnv() (bool, error) {
	_, ok, err := fft.LoadTunedFromEnv()
	return ok, err
}

// ResetTuning restores the built-in default thresholds.
func ResetTuning() { fft.ResetTuned() }
