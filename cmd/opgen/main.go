// Command opgen generates the workloads of the paper's experimental study:
// controlled synthetic series (uniform/normal pattern, R/I/D noise mixtures)
// and the Wal-Mart and CIMEG real-data substitutes, written as one line of
// single-letter symbols suitable for opminer.
//
// Usage:
//
//	opgen -kind synthetic -n 100000 -period 25 -sigma 10 -dist U -noise R -ratio 0.2 > series.txt
//	opgen -kind walmart -months 15 > walmart.txt
//	opgen -kind cimeg -days 365 -raw > cimeg-values.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"periodica/internal/cimeg"
	"periodica/internal/gen"
	"periodica/internal/series"
	"periodica/internal/walmart"
)

func main() {
	var (
		kind   = flag.String("kind", "synthetic", "workload: synthetic, walmart, cimeg")
		out    = flag.String("out", "", "output file (default stdout)")
		seed   = flag.Int64("seed", 1, "random seed")
		raw    = flag.Bool("raw", false, "walmart/cimeg: emit numeric values, one per line, instead of symbols")
		n      = flag.Int("n", 100000, "synthetic: series length")
		period = flag.Int("period", 25, "synthetic: embedded period")
		sigma  = flag.Int("sigma", 10, "synthetic: alphabet size")
		dist   = flag.String("dist", "U", "synthetic: symbol distribution, U or N")
		noise  = flag.String("noise", "", "synthetic: noise kinds, e.g. R, I, D, R+I+D")
		ratio  = flag.Float64("ratio", 0, "synthetic: noise ratio in [0,1]")
		months = flag.Int("months", 15, "walmart: months of hourly data")
		days   = flag.Int("days", 365, "cimeg: days of daily data")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	var f *os.File
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w = bufio.NewWriter(f)
	}

	switch *kind {
	case "synthetic":
		d := gen.Uniform
		if strings.EqualFold(*dist, "N") {
			d = gen.Normal
		} else if !strings.EqualFold(*dist, "U") {
			fatal(fmt.Errorf("unknown distribution %q (want U or N)", *dist))
		}
		kinds, err := gen.ParseNoise(*noise)
		if err != nil {
			fatal(err)
		}
		s, _, err := gen.Generate(gen.Config{
			Length: *n, Period: *period, Sigma: *sigma, Dist: d,
			Noise: kinds, NoiseRatio: *ratio, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		writeSymbols(w, s)
	case "walmart":
		values := walmart.Generate(walmart.Config{Months: *months, Seed: *seed, DST: true})
		if *raw {
			writeValues(w, values)
		} else {
			writeSymbols(w, walmart.Discretize(values))
		}
	case "cimeg":
		values := cimeg.Generate(cimeg.Config{Days: *days, Seed: *seed, Seasonal: true})
		if *raw {
			writeValues(w, values)
		} else {
			writeSymbols(w, cimeg.Discretize(values))
		}
	default:
		fatal(fmt.Errorf("unknown kind %q (want synthetic, walmart, cimeg)", *kind))
	}

	// The buffered writes above latch their first error inside w; Flush
	// reports it, and Close catches what the OS only surfaces then.
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func writeSymbols(w *bufio.Writer, s *series.Series) {
	for i := 0; i < s.Len(); i++ {
		w.WriteString(s.Alphabet().Symbol(s.At(i))) //opvet:ignore errcheck-lite bufio latches the error; main checks Flush
	}
	w.WriteByte('\n') //opvet:ignore errcheck-lite bufio latches the error; main checks Flush
}

func writeValues(w *bufio.Writer, values []float64) {
	for _, v := range values {
		fmt.Fprintf(w, "%g\n", v) //opvet:ignore errcheck-lite bufio latches the error; main checks Flush
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "opgen:", err)
	os.Exit(1)
}
