package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"reflect"

	"periodica"
	"periodica/internal/dist"
	"periodica/internal/gen"
	"periodica/internal/httpapi"
)

// distPoint is one measured cell of the distributed-scaling run: best-of
// wall time for a full mine at a given worker count. Workers == 0 is the
// single-process baseline — no coordinator, no HTTP. Candidates records
// which detection path the cell used: "shipped" (the coordinator runs the
// sweep once and ships each shard its survivor list) or "self-detect"
// (every worker re-detects over the whole series).
type distPoint struct {
	N          int     `json:"n"`
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	Speedup    float64 `json:"speedup"`
	Candidates string  `json:"candidates,omitempty"`
}

// distBench measures the sharded coordinator against the single-process
// mine on the same noisy periodic series. The workers are real httpapi
// servers reached over loopback HTTP, so the numbers include the full
// serialization + dispatch + merge cost; they share this process's cores,
// which makes the table an overhead ceiling rather than a cluster speedup.
func distBench(sc scale, seed int64, jsonPath string) error {
	reps := 3
	if sc.length >= fullScale.length {
		reps = 5
	}

	inner, _, err := gen.Generate(gen.Config{
		Length: sc.length, Period: 32, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.2, Seed: seed,
	})
	if err != nil {
		return err
	}
	s, err := periodica.NewSeriesFromString(inner.String())
	if err != nil {
		return err
	}
	// Cap the verification band: an uncapped MaxPeriod at bench scale puts
	// tens of thousands of candidate periods through the O(n)-per-slot
	// resolve stage and the run takes minutes per mine. 2048 keeps the
	// shard plan wide enough to split across every worker count measured.
	q, err := periodica.CompileQuery("conf >= 0.6 and period <= 2048 and pairs >= 3 and pattern period <= 64")
	if err != nil {
		return err
	}
	opt := q.Options()

	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	const maxWorkers = 4
	urls := make([]string, maxWorkers)
	for i := range urls {
		srv := httptest.NewServer(httpapi.New(httpapi.Config{Logger: quiet}))
		defer srv.Close()
		urls[i] = srv.URL
	}

	want, err := periodica.Mine(s, opt)
	if err != nil {
		return err
	}
	var mineErr error
	base := bestOf(reps, func() {
		if _, err := periodica.Mine(s, opt); err != nil {
			mineErr = err
		}
	})
	if mineErr != nil {
		return mineErr
	}

	fmt.Println("Distributed scaling — full mine via sharded coordinator, in-process HTTP workers (best of", reps, "runs)")
	fmt.Printf("%10s %9s %12s %12s %9s\n", "n", "workers", "candidates", "ms", "vs local")
	fmt.Printf("%10d %9s %12s %12.1f %9s\n", s.Len(), "local", "-", base*1e3, "1.00x")
	points := []distPoint{{N: s.Len(), Workers: 0, Seconds: base, Speedup: 1}}

	// Every worker count runs both candidate paths: "shipped" (the default —
	// the coordinator sweeps once and ships survivors with each shard) and
	// "self-detect" (NoCandidatePrecompute: every worker re-runs detection
	// over the whole series). Both are byte-identical to the local mine; the
	// point of the comparison is how much redundant whole-series work the
	// shipped path removes.
	shippedAt := map[int]float64{}
	for _, cand := range []struct {
		name string
		noPC bool
	}{{"shipped", false}, {"self-detect", true}} {
		for _, w := range []int{1, 2, 4} {
			coord, err := dist.New(dist.Config{
				Workers: urls[:w], NoCandidatePrecompute: cand.noPC, Logger: quiet,
			})
			if err != nil {
				return err
			}
			got, err := coord.Mine(context.Background(), s, opt)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got, want) {
				return fmt.Errorf("dist: %d-worker %s result differs from the single-process mine", w, cand.name)
			}
			secs := bestOf(reps, func() {
				if _, err := coord.Mine(context.Background(), s, opt); err != nil {
					mineErr = err
				}
			})
			if mineErr != nil {
				return mineErr
			}
			if cand.noPC {
				fmt.Printf("%10d %9d %12s %12.1f %8.2fx   (shipped wins %.2fx)\n",
					s.Len(), w, cand.name, secs*1e3, base/secs, secs/shippedAt[w])
			} else {
				shippedAt[w] = secs
				fmt.Printf("%10d %9d %12s %12.1f %8.2fx\n", s.Len(), w, cand.name, secs*1e3, base/secs)
			}
			points = append(points, distPoint{
				N: s.Len(), Workers: w, Seconds: secs, Speedup: base / secs, Candidates: cand.name,
			})
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}
