package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"reflect"

	"periodica"
	"periodica/internal/dist"
	"periodica/internal/gen"
	"periodica/internal/httpapi"
)

// distPoint is one measured cell of the distributed-scaling run: best-of
// wall time for a full mine at a given worker count. Workers == 0 is the
// single-process baseline — no coordinator, no HTTP.
type distPoint struct {
	N       int     `json:"n"`
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup"`
}

// distBench measures the sharded coordinator against the single-process
// mine on the same noisy periodic series. The workers are real httpapi
// servers reached over loopback HTTP, so the numbers include the full
// serialization + dispatch + merge cost; they share this process's cores,
// which makes the table an overhead ceiling rather than a cluster speedup.
func distBench(sc scale, seed int64, jsonPath string) error {
	reps := 3
	if sc.length >= fullScale.length {
		reps = 5
	}

	inner, _, err := gen.Generate(gen.Config{
		Length: sc.length, Period: 32, Sigma: 10, Dist: gen.Uniform,
		Noise: gen.Replacement, NoiseRatio: 0.2, Seed: seed,
	})
	if err != nil {
		return err
	}
	s, err := periodica.NewSeriesFromString(inner.String())
	if err != nil {
		return err
	}
	// Cap the verification band: an uncapped MaxPeriod at bench scale puts
	// tens of thousands of candidate periods through the O(n)-per-slot
	// resolve stage and the run takes minutes per mine. 2048 keeps the
	// shard plan wide enough to split across every worker count measured.
	opt := periodica.Options{Threshold: 0.6, MaxPeriod: 2048, MinPairs: 3, MaxPatternPeriod: 64}

	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	const maxWorkers = 4
	urls := make([]string, maxWorkers)
	for i := range urls {
		srv := httptest.NewServer(httpapi.New(httpapi.Config{Logger: quiet}))
		defer srv.Close()
		urls[i] = srv.URL
	}

	want, err := periodica.Mine(s, opt)
	if err != nil {
		return err
	}
	var mineErr error
	base := bestOf(reps, func() {
		if _, err := periodica.Mine(s, opt); err != nil {
			mineErr = err
		}
	})
	if mineErr != nil {
		return mineErr
	}

	fmt.Println("Distributed scaling — full mine via sharded coordinator, in-process HTTP workers (best of", reps, "runs)")
	fmt.Printf("%10s %9s %12s %9s\n", "n", "workers", "ms", "vs local")
	fmt.Printf("%10d %9s %12.1f %9s\n", s.Len(), "local", base*1e3, "1.00x")
	points := []distPoint{{N: s.Len(), Workers: 0, Seconds: base, Speedup: 1}}

	for _, w := range []int{1, 2, 4} {
		coord, err := dist.New(dist.Config{Workers: urls[:w], Logger: quiet})
		if err != nil {
			return err
		}
		got, err := coord.Mine(context.Background(), s, opt)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("dist: %d-worker result differs from the single-process mine", w)
		}
		secs := bestOf(reps, func() {
			if _, err := coord.Mine(context.Background(), s, opt); err != nil {
				mineErr = err
			}
		})
		if mineErr != nil {
			return mineErr
		}
		points = append(points, distPoint{N: s.Len(), Workers: w, Seconds: secs, Speedup: base / secs})
		fmt.Printf("%10d %9d %12.1f %8.2fx\n", s.Len(), w, secs*1e3, base/secs)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}
