// Command opbench regenerates the figures and tables of the paper's
// experimental study (§4) and prints them as text.
//
// Usage:
//
//	opbench fig3            # correctness of the miner (Fig. 3 a/b)
//	opbench fig4            # correctness of the periodic-trends baseline
//	opbench fig5            # timing: miner detection vs trends sketch
//	opbench fig6            # noise resilience sweep
//	opbench table1          # period values, Wal-Mart & CIMEG substitutes
//	opbench table2          # single-symbol patterns at p=24 / p=7
//	opbench table3          # multi-symbol patterns, Wal-Mart, ψ=35%
//	opbench kernels         # per-kernel convolution breakdown (complex vs
//	                        # real vs four-step, tuned vs pinned crossovers)
//	opbench dist            # sharded-coordinator scaling vs the local mine
//	opbench -query 'conf >= 0.5 and period in 2..64' query
//	                        # time one pattern query end to end (compile,
//	                        # mine, shape) over the Wal-Mart substitute
//	opbench all
//
// The default scale finishes in minutes; -quick names it explicitly (CI
// uses it), and -full restores the paper's 1M-symbol, 100-run settings
// (hours). -workers caps the cores the batched detection engine may use
// (default: all). -benchjson writes the fig5 timing points (or, for the
// kernels experiment, the per-kernel breakdown) to a file as JSON, for
// machine comparison and CI artifacts. -tune loads a saved fft.TunedProfile
// before benchmarking; -autotune runs a fresh calibration sweep of the given
// duration instead. Every report opens with a provenance header (engine,
// GOMAXPROCS, tuned-profile source) so bench_results_*.txt files are
// comparable across hosts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"periodica"
	"periodica/internal/cimeg"
	"periodica/internal/experiments"
	"periodica/internal/fft"
	"periodica/internal/gen"
	"periodica/internal/series"
	"periodica/internal/walmart"
)

type scale struct {
	length      int
	runs        int
	noiseRuns   int
	timingSizes []int
	months      int
	days        int
}

var quickScale = scale{
	length: 50000, runs: 5, noiseRuns: 3,
	timingSizes: []int{1 << 13, 1 << 15, 1 << 17, 1 << 19},
	months:      15, days: 365,
}

var fullScale = scale{
	length: 1000000, runs: 100, noiseRuns: 20,
	timingSizes: []int{1 << 16, 1 << 18, 1 << 20, 1 << 22},
	months:      15, days: 365,
}

func main() {
	full := flag.Bool("full", false, "paper-scale settings (1M symbols, 100 runs)")
	quick := flag.Bool("quick", false, "CI-scale settings (the default; ignored when -full is set)")
	seed := flag.Int64("seed", 1, "base random seed")
	workers := flag.Int("workers", 0, "cap worker goroutines for the detection engine (0 = all cores)")
	benchJSON := flag.String("benchjson", "", "also write the fig5 timing points (or kernels breakdown) to this file as JSON")
	tune := flag.String("tune", "", "load an fft tuned-profile JSON before benchmarking (default $PERIODICA_TUNE_FILE)")
	autotune := flag.Duration("autotune", 0, "run a calibration sweep of this duration and apply (and, with -tune, save) the profile")
	querySrc := flag.String("query", "", "pattern query for the query experiment (default $PERIODICA_QUERY)")
	flag.Parse()

	if *workers > 0 {
		// The batched engine sizes its pools from GOMAXPROCS, so capping it
		// here bounds both the per-pair fan-out and the parallel butterflies.
		runtime.GOMAXPROCS(*workers)
	}
	if err := applyTuning(*tune, *autotune); err != nil {
		fmt.Fprintln(os.Stderr, "opbench:", err)
		os.Exit(1)
	}
	sc := quickScale
	scaleName := "quick"
	if *full {
		if *quick {
			fmt.Fprintln(os.Stderr, "opbench: -quick and -full are mutually exclusive")
			os.Exit(2)
		}
		sc = fullScale
		scaleName = "full"
	}
	printProvenance(scaleName)
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	for _, cmd := range args {
		var err error
		switch cmd {
		case "fig3":
			err = fig3(sc, *seed)
		case "fig4":
			err = fig4(sc, *seed)
		case "fig5":
			err = fig5(sc, *seed, *benchJSON)
		case "fig6":
			err = fig6(sc, *seed)
		case "table1":
			err = table1(sc, *seed)
		case "table2":
			err = table2(sc, *seed)
		case "table3":
			err = table3(sc, *seed)
		case "kernels":
			err = kernels(sc, *seed, *benchJSON)
		case "dist":
			err = distBench(sc, *seed, *benchJSON)
		case "query":
			err = queryBench(sc, *seed, *querySrc)
		case "ablation":
			err = ablation(sc, *seed)
		case "quality":
			err = quality(sc, *seed)
		case "all":
			fig5All := func(sc scale, seed int64) error { return fig5(sc, seed, *benchJSON) }
			for _, f := range []func(scale, int64) error{fig3, fig4, fig5All, fig6, table1, table2, table3, ablation, quality} {
				if err = f(sc, *seed); err != nil {
					break
				}
			}
		default:
			err = fmt.Errorf("unknown experiment %q", cmd)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "opbench:", err)
			os.Exit(1)
		}
	}
}

func correctnessConfig(sc scale, seed int64) experiments.CorrectnessConfig {
	return experiments.CorrectnessConfig{
		Length: sc.length, Sigma: 10, Periods: []int{25, 32},
		Dists:     []gen.Distribution{gen.Uniform, gen.Normal},
		Multiples: 3, Runs: sc.runs, Seed: seed,
	}
}

func fig3(sc scale, seed int64) error {
	cfg := correctnessConfig(sc, seed)
	points, err := experiments.Correctness(cfg, experiments.MinerConfidence())
	if err != nil {
		return err
	}
	if err := experiments.RenderCorrectness(os.Stdout, "Fig. 3(a) — miner correctness, inerrant data (confidence at multiples of P)", points); err != nil {
		return err
	}

	cfg.Noise = gen.Replacement
	cfg.Ratio = 0.2
	points, err = experiments.Correctness(cfg, experiments.MinerConfidence())
	if err != nil {
		return err
	}
	if err := experiments.RenderCorrectness(os.Stdout, "\nFig. 3(b) — miner correctness, 20% replacement noise", points); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func fig4(sc scale, seed int64) error {
	// The baseline runs in its published, sketched form. Its normalized-rank
	// confidence depends on the absolute distance D(p), which shrinks with
	// the overlap n−p, so under noise the rank systematically improves as
	// the period grows — the bias §4.1 reports. The effect scales with p/n,
	// so panel (b) sweeps multiples geometrically; the miner's panel at the
	// same multiples (fig3) shows no comparable distance-driven trend.
	cfg := correctnessConfig(sc, seed)
	points, err := experiments.Correctness(cfg, experiments.TrendsConfidence(true, 0, seed))
	if err != nil {
		return err
	}
	if err := experiments.RenderCorrectness(os.Stdout, "Fig. 4(a) — periodic trends correctness, inerrant data (normalized rank)", points); err != nil {
		return err
	}

	cfg.Noise = gen.Replacement
	cfg.Ratio = 0.5
	points, err = experiments.Correctness(cfg, experiments.TrendsConfidence(true, 0, seed))
	if err != nil {
		return err
	}
	if err := experiments.RenderCorrectness(os.Stdout, "\nFig. 4(b) — periodic trends correctness, 50% replacement noise (note the large-period bias)", points); err != nil {
		return err
	}

	// Make the bias concrete: under noise the absolute distance shrinks
	// with the overlap n−p, so the top of the trends candidate list fills
	// with the largest multiples while the true period ranks mid-pack.
	stats, err := experiments.TrendsBias(cfg.Length, 25, 0.5, seed)
	if err != nil {
		return err
	}
	fmt.Printf("\nbias diagnostic (U, P=25, 50%% replacement, n=%d):\n", cfg.Length)
	fmt.Printf("  rank of P=25 among %d candidates: %d\n", stats.Universe, stats.TrueRank)
	fmt.Printf("  median of the top-100 candidate periods: %d (max period %d)\n", stats.TopMedian, stats.Universe)
	fmt.Printf("  miner confidence at P=25 on the same data: %.3f (paper: detectable at ψ=40%%)\n", stats.MinerConfidence)
	fmt.Println()
	return nil
}

func fig5(sc scale, seed int64, jsonPath string) error {
	points, err := experiments.Timing(sc.timingSizes, func(n int) (*series.Series, error) {
		months := n/(30*24) + 1
		s := walmart.Series(walmart.Config{Months: months, Seed: seed, DST: true})
		return s.Slice(0, n), nil
	})
	if err != nil {
		return err
	}
	if err := experiments.RenderTiming(os.Stdout, "Fig. 5 — detection-phase time vs series length (Wal-Mart-style data)", points); err != nil {
		return err
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}

func fig6(sc scale, seed int64) error {
	ratios := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	for _, panel := range []struct {
		title  string
		dist   gen.Distribution
		period int
	}{
		{"Fig. 6(a) — noise resilience, Uniform, P=25", gen.Uniform, 25},
		{"Fig. 6(b) — noise resilience, Normal, P=32", gen.Normal, 32},
	} {
		points, err := experiments.NoiseResilience(experiments.NoiseConfig{
			Length: sc.length, Sigma: 10, Period: panel.period, Dist: panel.dist,
			Kinds: experiments.AllNoiseKinds, Ratios: ratios, Runs: sc.noiseRuns, Seed: seed,
		})
		if err != nil {
			return err
		}
		if err := experiments.RenderNoise(os.Stdout, panel.title, points); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

var tableThresholds = []int{100, 90, 80, 70, 60, 50, 40, 30, 20, 10}

func table1(sc scale, seed int64) error {
	wm := walmart.Series(walmart.Config{Months: sc.months, Seed: seed, DST: true})
	rows, err := experiments.PeriodTable(wm, tableThresholds, 0, 4)
	if err != nil {
		return err
	}
	if err := experiments.RenderPeriodTable(os.Stdout, "Table 1 — period values, Wal-Mart substitute (hourly transactions)", rows); err != nil {
		return err
	}

	cm := cimeg.Series(cimeg.Config{Days: sc.days, Seed: seed, Seasonal: true})
	rows, err = experiments.PeriodTable(cm, tableThresholds, 0, 4)
	if err != nil {
		return err
	}
	if err := experiments.RenderPeriodTable(os.Stdout, "\nTable 1 — period values, CIMEG substitute (daily power consumption)", rows); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func table2(sc scale, seed int64) error {
	wm := walmart.Series(walmart.Config{Months: sc.months, Seed: seed, DST: true})
	rows, err := experiments.SinglePatternTable(wm, 24, tableThresholds[:6])
	if err != nil {
		return err
	}
	if err := experiments.RenderSinglePatternTable(os.Stdout, "Table 2 — single-symbol patterns, Wal-Mart substitute, period 24", rows); err != nil {
		return err
	}

	cm := cimeg.Series(cimeg.Config{Days: sc.days, Seed: seed, Seasonal: true})
	rows, err = experiments.SinglePatternTable(cm, 7, tableThresholds[:6])
	if err != nil {
		return err
	}
	if err := experiments.RenderSinglePatternTable(os.Stdout, "\nTable 2 — single-symbol patterns, CIMEG substitute, period 7", rows); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func ablation(sc scale, seed int64) error {
	sizes := []int{1 << 12, 1 << 14, 1 << 16}
	rows, err := experiments.EngineAblation(sizes, 0.7, 1<<14, seed)
	if err != nil {
		return err
	}
	if err := experiments.RenderEngineAblation(os.Stdout, "Ablation — full mining time per engine (ψ=0.7, pattern stage ≤ p=64)", rows); err != nil {
		return err
	}

	skRows, err := experiments.SketchAblation(1<<15, []int{2, 8, 32, 128}, seed)
	if err != nil {
		return err
	}
	fmt.Println()
	if err := experiments.RenderSketchAblation(os.Stdout, "Ablation — trends sketch accuracy vs repetitions (n=32768)", skRows); err != nil {
		return err
	}

	prRows, err := experiments.PruneAblation(1<<14, []int{80, 40}, []int{1, 4, 16}, seed)
	if err != nil {
		return err
	}
	fmt.Println()
	if err := experiments.RenderPruneAblation(os.Stdout, "Ablation — FFT-engine prune: (period, symbol) pairs needing phase resolution", prRows); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func quality(sc scale, seed int64) error {
	cfg := experiments.QualityConfig{Length: 8000, Period: 25, Sigma: 10,
		Ratios: []float64{0.1, 0.3, 0.5}, Runs: sc.noiseRuns, TopK: 10, Seed: seed}
	rows, err := experiments.Quality(cfg)
	if err != nil {
		return err
	}
	if err := experiments.RenderQuality(os.Stdout,
		"Quality (beyond the paper) — rank of the true period per detector under replacement noise",
		rows, cfg.TopK); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// applyTuning installs the fft tuned profile the flags ask for. -autotune
// runs a fresh calibration sweep and applies it (and, when -tune also names a
// path, persists the profile there for later runs); -tune alone loads a saved
// profile. With neither flag, a profile named by PERIODICA_TUNE_FILE is
// honored when present, so opbench sees exactly what a deployed miner sees.
func applyTuning(tunePath string, budget time.Duration) error {
	if budget > 0 {
		prof := fft.Autotune(budget)
		fft.ApplyTuned(prof)
		if tunePath != "" {
			if err := prof.Save(tunePath); err != nil {
				return err
			}
		}
		return nil
	}
	if tunePath != "" {
		prof, err := fft.LoadTuned(tunePath)
		if err != nil {
			return err
		}
		fft.ApplyTuned(prof)
		return nil
	}
	_, _, err := fft.LoadTunedFromEnv()
	return err
}

// printProvenance opens every report with the facts needed to compare two
// bench_results files: scale, engine selection, parallelism, toolchain, and
// where the fft tuning came from. Numbers without this header are not
// comparable across hosts.
func printProvenance(scaleName string) {
	engine := os.Getenv("PERIODICA_ENGINE")
	if engine == "" {
		engine = "auto"
	}
	fmt.Printf("opbench: scale=%s engine=%s GOMAXPROCS=%d go=%s\n",
		scaleName, engine, runtime.GOMAXPROCS(0), runtime.Version())
	if p := fft.Tuned(); p != nil {
		fmt.Printf("opbench: tuned profile %s (host=%s engineCrossover=%d parallelThreshold=%d fourStepMin=%d calibration=%.3fs)\n",
			p.Source, p.Host, p.EngineCrossover, p.ParallelThreshold, p.FourStepMin, p.CalibrationSecs)
	} else {
		fmt.Printf("opbench: tuned profile none (pinned defaults: engineCrossover=4096 parallelThreshold=%d fourStepMin=%d)\n",
			fft.DefaultParallelThreshold, fft.DefaultFourStepMin)
	}
	fmt.Println()
}

// kernelPoint is one measured cell of the per-kernel breakdown: best-of wall
// time for one per-symbol autocorrelation (lag counts) at series length n.
type kernelPoint struct {
	N                int     `json:"n"`
	Kernel           string  `json:"kernel"`
	Seconds          float64 `json:"seconds"`
	SpeedupVsComplex float64 `json:"speedupVsComplex"`
}

// bestOf reports the fastest of reps runs of f, in seconds.
func bestOf(reps int, f func()) float64 {
	best := math.MaxFloat64
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if d := time.Since(start).Seconds(); d < best {
			best = d
		}
	}
	return best
}

// kernels benchmarks the convolution hot path — one symbol's circular
// autocorrelation counts — under each FFT kernel at the scale's timing sizes:
// the complex radix-2 path (the only kernel before the real/four-step split),
// the real-input half-size kernel, the real kernel over the four-step
// cache-blocked transform, and the auto dispatch under both the active tuned
// profile and the pinned defaults. The speedup column is new-vs-old: pinned
// auto dispatch against the complex kernel.
func kernels(sc scale, seed int64, jsonPath string) error {
	workers := runtime.GOMAXPROCS(0)
	reps := 3
	if sc.length >= fullScale.length {
		reps = 5
	}

	// Restore whatever tuning state the flags installed once we are done
	// flipping kernels on and off for the per-cell measurements.
	prof := fft.Tuned()
	savedMin := fft.FourStepMin()
	defer func() {
		if prof != nil {
			fft.ApplyTuned(prof)
		} else {
			fft.ResetTuned()
		}
	}()

	fmt.Println("Per-kernel breakdown — per-symbol autocorrelation counts (best of", reps, "runs, ms)")
	fmt.Printf("%10s %12s %12s %12s %12s %12s %9s\n",
		"n", "complex", "real", "real+4step", "auto/tuned", "auto/pinned", "speedup")

	var points []kernelPoint
	for _, n := range sc.timingSizes {
		plan := fft.PlanFor(fft.NextPow2(2 * n))
		x := make([]float64, n)
		rng := uint64(seed)*0x9e3779b97f4a7c15 + 1
		for i := range x {
			rng = rng*6364136223846793005 + 1442695040888963407
			x[i] = float64(rng >> 63)
		}
		out := make([]int64, n)

		measure := func(f func()) float64 {
			f() // warm the plan cache and scratch pools outside the timed reps
			return bestOf(reps, f)
		}

		fft.SetFourStepMin(fft.FourStepDisabled)
		complexSec := measure(func() { plan.AutocorrelateCountsKernelInto(x, out, workers, fft.KernelComplex) })
		realSec := measure(func() { plan.AutocorrelateCountsKernelInto(x, out, workers, fft.KernelReal) })
		fft.SetFourStepMin(1) // clamps to the four-step floor: forced on
		fourSec := measure(func() { plan.AutocorrelateCountsKernelInto(x, out, workers, fft.KernelReal) })

		fft.SetFourStepMin(savedMin)
		tunedSec := measure(func() { plan.AutocorrelateCountsInto(x, out, workers) })
		fft.ResetTuned()
		pinnedSec := measure(func() { plan.AutocorrelateCountsInto(x, out, workers) })
		if prof != nil {
			fft.ApplyTuned(prof)
		}

		speedup := complexSec / pinnedSec
		fmt.Printf("%10d %12.3f %12.3f %12.3f %12.3f %12.3f %8.2fx\n",
			n, complexSec*1e3, realSec*1e3, fourSec*1e3, tunedSec*1e3, pinnedSec*1e3, speedup)

		for _, cell := range []struct {
			kernel string
			sec    float64
		}{
			{"complex", complexSec},
			{"real", realSec},
			{"real+fourstep", fourSec},
			{"auto-tuned", tunedSec},
			{"auto-pinned", pinnedSec},
		} {
			points = append(points, kernelPoint{
				N: n, Kernel: cell.kernel, Seconds: cell.sec,
				SpeedupVsComplex: complexSec / cell.sec,
			})
		}
	}

	fourMin := "disabled"
	if savedMin < fft.FourStepDisabled {
		fourMin = fmt.Sprint(savedMin)
	}
	fmt.Printf("active crossovers: fourStepMin=%s parallelThreshold=%d engineCrossover=%d (0 = pinned 4096)\n",
		fourMin, fft.ParallelThreshold(), fft.TunedEngineCrossover())

	if jsonPath != "" {
		data, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	fmt.Println()
	return nil
}

// queryBench times one pattern query end to end — compile, mine, shape —
// over the Wal-Mart substitute, exercising the exact path a query-driven
// caller takes through the public API.
func queryBench(sc scale, seed int64, src string) error {
	if src == "" {
		src = os.Getenv("PERIODICA_QUERY")
	}
	if src == "" {
		return fmt.Errorf("the query experiment needs -query or $PERIODICA_QUERY")
	}
	compileStart := time.Now()
	q, err := periodica.CompileQuery(src)
	if err != nil {
		return err
	}
	compileTime := time.Since(compileStart)
	wm := walmart.Series(walmart.Config{Months: sc.months, Seed: seed, DST: true})
	s, err := periodica.NewSeriesFromString(wm.String())
	if err != nil {
		return err
	}
	mineStart := time.Now()
	res, err := periodica.MineQuery(s, q)
	if err != nil {
		return err
	}
	mineTime := time.Since(mineStart)
	fmt.Printf("Query benchmark — Wal-Mart substitute, n=%d\n", s.Len())
	fmt.Printf("  query (canonical): %s\n", q)
	fmt.Printf("  compile: %v   mine+shape: %v\n", compileTime, mineTime)
	fmt.Printf("  periods=%d periodicities=%d patterns=%d truncated=%v\n",
		len(res.Periods), len(res.Periodicities), len(res.Patterns), res.Truncated)
	fmt.Println()
	return nil
}

func table3(sc scale, seed int64) error {
	wm := walmart.Series(walmart.Config{Months: sc.months, Seed: seed, DST: true})
	rows, err := experiments.PatternTable(wm, 24, 0.35, 30)
	if err != nil {
		return err
	}
	if err := experiments.RenderPatternTable(os.Stdout, "Table 3 — periodic patterns, Wal-Mart substitute, period 24, ψ=35%", rows); err != nil {
		return err
	}
	fmt.Println()
	return nil
}
