// Command opminer mines obscure periodic patterns from a symbol series: the
// period is not an input — discovering it is part of the mining process.
//
// Input formats (-format):
//
//	text    single-rune symbols, whitespace ignored (default)
//	binary  the periodica binary series format (opgen/…)
//	values  numeric values, one per line, discretized into -levels
//	        equal-width levels
//
// Output lists the detected period values, the symbol periodicities, and the
// periodic patterns with their supports; -json emits the full result as
// JSON.
//
// Usage:
//
//	opgen -kind walmart | opminer -threshold 0.5 -top 20
//	opminer -in readings.txt -format values -levels 5 -threshold 0.6
//	opminer -in series.txt -threshold 0.8 -maximal -json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"periodica"
	"periodica/internal/cli"
	"periodica/internal/series"
)

func main() {
	var (
		in         = flag.String("in", "", "input file (default stdin)")
		format     = flag.String("format", "text", "input format: text, binary, values, events")
		levels     = flag.Int("levels", 5, "values format: number of levels")
		sax        = flag.Bool("sax", false, "values format: SAX pipeline (z-score + Gaussian levels) instead of equal-width")
		detrend    = flag.Int("detrend", 0, "values format with -sax: moving-average detrend window (0 = off)")
		paa        = flag.Int("paa", 0, "values format with -sax: piecewise-aggregate frame (0 = off)")
		bin        = flag.Duration("bin", time.Minute, "events format: grid resolution")
		idle       = flag.String("idle", "idle", "events format: symbol for empty bins")
		threshold  = flag.Float64("threshold", 0.8, "periodicity threshold ψ in (0,1]")
		minPeriod  = flag.Int("min-period", 0, "smallest candidate period (default 1)")
		maxPeriod  = flag.Int("max-period", 0, "largest candidate period (default n/2)")
		engine     = flag.String("engine", "", "engine: auto, naive, bitset, fft (default $PERIODICA_ENGINE or auto)")
		maxPatP    = flag.Int("max-pattern-period", 128, "largest period mined for multi-symbol patterns (-1 disables)")
		maximal    = flag.Bool("maximal", false, "report only maximal multi-symbol patterns")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON")
		top        = flag.Int("top", 25, "rows printed per section (0 = all)")
		candidates = flag.Bool("candidates-only", false, "run only the O(σ n log n) detection phase and list candidate periods")
		tuneFile   = flag.String("tune", "", "load a convolution tuned-profile JSON (default $PERIODICA_TUNE_FILE)")
		autotune   = flag.Duration("autotune", 0, "calibrate the convolution crossovers for this host before mining (sweep duration; with -tune, saves the profile there)")
	)
	flag.Parse()

	// Tuning only moves work between byte-identical kernels, so it can never
	// change what gets mined — apply it before anything touches the engine.
	// Explicit -tune/-autotune failures are fatal; a broken environment
	// profile only warns and mines on the pinned defaults.
	err := cli.BootstrapTuning(*autotune, *tuneFile, func(msg string) {
		fmt.Fprintln(os.Stderr, "opminer: warning:", msg)
	})
	if err != nil {
		fatal(err)
	}

	s, err := readSeries(*in, *format, prepConfig{
		levels: *levels, sax: *sax, detrend: *detrend, paa: *paa,
		bin: *bin, idle: *idle,
	})
	if err != nil {
		fatal(err)
	}
	if !*jsonOut {
		fmt.Printf("series: n=%d symbols, alphabet %v\n", s.Len(), s.Alphabet())
	}

	if *candidates {
		periods, err := periodica.CandidatePeriods(s, *threshold, *maxPeriod)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(map[string]any{"threshold": *threshold, "candidatePeriods": periods})
			return
		}
		fmt.Printf("candidate periods (ψ=%.2f): %d\n", *threshold, len(periods))
		printPeriods(periods, *top)
		return
	}

	// The engine default resolves like the CI parity matrix does: the
	// PERIODICA_ENGINE environment variable when the flag is unset, then
	// auto.
	name := *engine
	if name == "" {
		name = os.Getenv("PERIODICA_ENGINE")
	}
	if name == "" {
		name = "auto"
	}
	eng, err := parseEngine(name)
	if err != nil {
		fatal(err)
	}
	res, err := periodica.Mine(s, periodica.Options{
		Threshold: *threshold, MinPeriod: *minPeriod, MaxPeriod: *maxPeriod,
		Engine: eng, MaxPatternPeriod: *maxPatP, MaximalOnly: *maximal,
	})
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		emitJSON(res)
		return
	}

	fmt.Printf("\ndetected periods (ψ=%.2f): %d\n", *threshold, len(res.Periods))
	printPeriods(res.Periods, *top)

	fmt.Printf("\nsymbol periodicities: %d\n", len(res.Periodicities))
	sort.SliceStable(res.Periodicities, func(i, j int) bool {
		return res.Periodicities[i].Confidence > res.Periodicities[j].Confidence
	})
	for i, sp := range res.Periodicities {
		if *top > 0 && i >= *top {
			fmt.Printf("  … %d more\n", len(res.Periodicities)-i)
			break
		}
		fmt.Printf("  symbol %-4s period %-6d position %-6d confidence %.3f (%d matches)\n",
			sp.Symbol, sp.Period, sp.Position, sp.Confidence, sp.Matches)
	}

	fmt.Printf("\nmulti-symbol patterns: %d", len(res.Patterns))
	if res.Truncated {
		fmt.Print(" (truncated)")
	}
	fmt.Println()
	for i, pt := range res.Patterns {
		if *top > 0 && i >= *top {
			fmt.Printf("  … %d more\n", len(res.Patterns)-i)
			break
		}
		fmt.Printf("  p=%-5d %-40s support %.1f%%\n", pt.Period, pt.Text, pt.Support*100)
	}
}

type prepConfig struct {
	levels  int
	sax     bool
	detrend int
	paa     int
	bin     time.Duration
	idle    string
}

func readSeries(path, format string, cfg prepConfig) (*periodica.Series, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }() // read-only; nothing to lose on close
		r = f
	}
	switch format {
	case "text":
		inner, err := series.ReadText(r)
		if err != nil {
			return nil, err
		}
		return periodica.NewSeriesFromString(inner.String())
	case "binary":
		inner, err := series.ReadBinary(r)
		if err != nil {
			return nil, err
		}
		return periodica.NewSeriesFromString(inner.String())
	case "values":
		values, err := series.ReadValues(r)
		if err != nil {
			return nil, err
		}
		if cfg.sax {
			return periodica.DiscretizeSAX(values, periodica.SAXOptions{
				Levels: cfg.levels, Frame: cfg.paa, DetrendWindow: cfg.detrend,
			})
		}
		return periodica.DiscretizeEqualWidth(values, cfg.levels)
	case "events":
		events, err := readEvents(r)
		if err != nil {
			return nil, err
		}
		return periodica.GridEvents(events, cfg.bin, cfg.idle)
	}
	return nil, fmt.Errorf("unknown format %q (want text, binary, values)", format)
}

// readEvents parses "RFC3339-timestamp symbol" lines.
func readEvents(r io.Reader) ([]periodica.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []periodica.Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("events line %d: want \"<RFC3339 time> <symbol>\", got %q", line, text)
		}
		ts, err := time.Parse(time.RFC3339, fields[0])
		if err != nil {
			return nil, fmt.Errorf("events line %d: %v", line, err)
		}
		out = append(out, periodica.Event{Time: ts, Symbol: fields[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func parseEngine(name string) (periodica.Engine, error) {
	switch strings.ToLower(name) {
	case "auto":
		return periodica.EngineAuto, nil
	case "naive":
		return periodica.EngineNaive, nil
	case "bitset":
		return periodica.EngineBitset, nil
	case "fft":
		return periodica.EngineFFT, nil
	}
	return 0, fmt.Errorf("unknown engine %q", name)
}

func printPeriods(periods []int, top int) {
	limit := len(periods)
	if top > 0 && top < limit {
		limit = top
	}
	var parts []string
	for _, p := range periods[:limit] {
		parts = append(parts, fmt.Sprint(p))
	}
	line := strings.Join(parts, ", ")
	if limit < len(periods) {
		line += ", …"
	}
	fmt.Printf("  %s\n", line)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "opminer:", err)
	os.Exit(1)
}
