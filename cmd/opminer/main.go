// Command opminer mines obscure periodic patterns from a symbol series: the
// period is not an input — discovering it is part of the mining process.
//
// Input formats (-format):
//
//	text    single-rune symbols, whitespace ignored (default)
//	binary  the periodica binary series format (opgen/…)
//	values  numeric values, one per line, discretized into -levels
//	        equal-width levels
//
// Output lists the detected period values, the symbol periodicities, and the
// periodic patterns with their supports; -json emits the full result as
// JSON.
//
// Mining parameters come either from the option flags or from one pattern
// query (-query or $PERIODICA_QUERY) like "conf >= 0.8 and period in 2..64";
// mixing -query with option flags is an error. "opminer query check <q>"
// compiles a query and prints its canonical form, typed plan, and spec JSON
// without mining.
//
// Usage:
//
//	opgen -kind walmart | opminer -threshold 0.5 -top 20
//	opgen -kind walmart | opminer -query 'conf >= 0.5 and period in 2..64'
//	opminer -in readings.txt -format values -levels 5 -threshold 0.6
//	opminer -in series.txt -threshold 0.8 -maximal -json
//	opminer query check 'conf >= 0.8 and symbol in {a, b} and limit 10 by conf'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"periodica"
	"periodica/internal/cli"
	"periodica/internal/query"
	"periodica/internal/series"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "query" {
		queryCommand(os.Args[2:])
		return
	}
	var (
		in         = flag.String("in", "", "input file (default stdin)")
		format     = flag.String("format", "text", "input format: text, binary, values, events")
		levels     = flag.Int("levels", 5, "values format: number of levels")
		sax        = flag.Bool("sax", false, "values format: SAX pipeline (z-score + Gaussian levels) instead of equal-width")
		detrend    = flag.Int("detrend", 0, "values format with -sax: moving-average detrend window (0 = off)")
		paa        = flag.Int("paa", 0, "values format with -sax: piecewise-aggregate frame (0 = off)")
		bin        = flag.Duration("bin", time.Minute, "events format: grid resolution")
		idle       = flag.String("idle", "idle", "events format: symbol for empty bins")
		threshold  = flag.Float64("threshold", 0.8, "periodicity threshold ψ in (0,1]")
		minPeriod  = flag.Int("min-period", 0, "smallest candidate period (default 1)")
		maxPeriod  = flag.Int("max-period", 0, "largest candidate period (default n/2)")
		engine     = flag.String("engine", "", "engine: auto, naive, bitset, fft (default $PERIODICA_ENGINE or auto)")
		maxPatP    = flag.Int("max-pattern-period", 128, "largest period mined for multi-symbol patterns (-1 disables)")
		maximal    = flag.Bool("maximal", false, "report only maximal multi-symbol patterns")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON")
		top        = flag.Int("top", 25, "rows printed per section (0 = all)")
		candidates = flag.Bool("candidates-only", false, "run only the O(σ n log n) detection phase and list candidate periods")
		tuneFile   = flag.String("tune", "", "load a convolution tuned-profile JSON (default $PERIODICA_TUNE_FILE)")
		autotune   = flag.Duration("autotune", 0, "calibrate the convolution crossovers for this host before mining (sweep duration; with -tune, saves the profile there)")
		querySrc   = flag.String("query", "", "pattern query, e.g. 'conf >= 0.8 and period in 2..64' (default $PERIODICA_QUERY); replaces the mining option flags")
	)
	flag.Parse()

	// A query and the option flags are two spellings of the same parameters;
	// accepting both would need a precedence rule nobody could remember, so
	// mixing them is an error. $PERIODICA_QUERY is only a default: explicit
	// option flags silently win over it, like any flag wins over its env
	// default.
	conflicting := miningFlagsSet()
	if *querySrc != "" && len(conflicting) > 0 {
		fatal(fmt.Errorf("-query conflicts with -%s; state those parameters as query clauses",
			strings.Join(conflicting, ", -")))
	}
	src := *querySrc
	if src == "" && len(conflicting) == 0 {
		src = os.Getenv("PERIODICA_QUERY")
	}
	var q *periodica.Query
	if src != "" {
		var err error
		if q, err = periodica.CompileQuery(src); err != nil {
			fatal(err)
		}
	}

	// Tuning only moves work between byte-identical kernels, so it can never
	// change what gets mined — apply it before anything touches the engine.
	// Explicit -tune/-autotune failures are fatal; a broken environment
	// profile only warns and mines on the pinned defaults.
	err := cli.BootstrapTuning(*autotune, *tuneFile, func(msg string) {
		fmt.Fprintln(os.Stderr, "opminer: warning:", msg)
	})
	if err != nil {
		fatal(err)
	}

	s, err := readSeries(*in, *format, prepConfig{
		levels: *levels, sax: *sax, detrend: *detrend, paa: *paa,
		bin: *bin, idle: *idle, query: q,
	})
	if err != nil {
		fatal(err)
	}
	if !*jsonOut {
		fmt.Printf("series: n=%d symbols, alphabet %v\n", s.Len(), s.Alphabet())
	}

	// The flag path and the query path converge on one Options value; the
	// engine default resolves like the CI parity matrix does — the explicit
	// flag or clause, then PERIODICA_ENGINE, then auto — so the same
	// invocation mines identically under any engine leg.
	var opt periodica.Options
	if q != nil {
		opt = q.Options()
	} else {
		// The option flags are just another spelling of a query: lift them
		// into a Spec, validate against the single validator, and compile the
		// canonical render — so a flag invocation and its query spelling
		// cannot diverge.
		sp := query.Spec{
			Threshold: *threshold, MinPeriod: *minPeriod, MaxPeriod: *maxPeriod,
			Engine: strings.ToLower(*engine), MaxPatternPeriod: *maxPatP, MaximalOnly: *maximal,
		}
		if err := sp.Validate(); err != nil {
			fatal(err)
		}
		fq, err := periodica.CompileQuery(sp.Render())
		if err != nil {
			fatal(err)
		}
		opt = fq.Options()
	}
	if opt.Engine == periodica.EngineAuto {
		if name := os.Getenv("PERIODICA_ENGINE"); name != "" {
			eng, err := periodica.ParseEngine(strings.ToLower(name))
			if err != nil {
				fatal(err)
			}
			opt.Engine = eng
		}
	}

	if *candidates {
		periods, err := periodica.CandidatePeriods(s, opt.Threshold, opt.MaxPeriod)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(map[string]any{"threshold": opt.Threshold, "candidatePeriods": periods})
			return
		}
		fmt.Printf("candidate periods (ψ=%.2f): %d\n", opt.Threshold, len(periods))
		printPeriods(periods, *top)
		return
	}

	res, err := periodica.Mine(s, opt)
	if err != nil {
		fatal(err)
	}
	if q != nil {
		if res, err = q.Shape(s, res); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		emitJSON(res)
		return
	}

	fmt.Printf("\ndetected periods (ψ=%.2f): %d\n", opt.Threshold, len(res.Periods))
	printPeriods(res.Periods, *top)

	fmt.Printf("\nsymbol periodicities: %d\n", len(res.Periodicities))
	sort.SliceStable(res.Periodicities, func(i, j int) bool {
		return res.Periodicities[i].Confidence > res.Periodicities[j].Confidence
	})
	for i, sp := range res.Periodicities {
		if *top > 0 && i >= *top {
			fmt.Printf("  … %d more\n", len(res.Periodicities)-i)
			break
		}
		fmt.Printf("  symbol %-4s period %-6d position %-6d confidence %.3f (%d matches)\n",
			sp.Symbol, sp.Period, sp.Position, sp.Confidence, sp.Matches)
	}

	fmt.Printf("\nmulti-symbol patterns: %d", len(res.Patterns))
	if res.Truncated {
		fmt.Print(" (truncated)")
	}
	fmt.Println()
	for i, pt := range res.Patterns {
		if *top > 0 && i >= *top {
			fmt.Printf("  … %d more\n", len(res.Patterns)-i)
			break
		}
		fmt.Printf("  p=%-5d %-40s support %.1f%%\n", pt.Period, pt.Text, pt.Support*100)
	}
}

type prepConfig struct {
	levels  int
	sax     bool
	detrend int
	paa     int
	bin     time.Duration
	idle    string
	query   *periodica.Query // when set, its levels/discretize clauses drive the values format
}

// miningFlagNames are the flags a pattern query replaces: everything that
// states a mining parameter or a discretization choice.
var miningFlagNames = map[string]bool{
	"threshold": true, "min-period": true, "max-period": true, "engine": true,
	"max-pattern-period": true, "maximal": true,
	"levels": true, "sax": true, "detrend": true, "paa": true,
}

// miningFlagsSet lists the explicitly set flags that conflict with -query.
func miningFlagsSet() []string {
	var set []string
	flag.Visit(func(f *flag.Flag) {
		if miningFlagNames[f.Name] {
			set = append(set, f.Name)
		}
	})
	return set
}

// queryCommand implements "opminer query check <query>": compile the query
// and print its canonical form, typed plan, and spec JSON — a dry run for
// what any entry point (CLI, HTTP, distributed) would execute.
func queryCommand(args []string) {
	if len(args) < 1 || args[0] != "check" {
		fatal(fmt.Errorf("usage: opminer query check <query>"))
	}
	src := strings.TrimSpace(strings.Join(args[1:], " "))
	if src == "" {
		fatal(fmt.Errorf("usage: opminer query check <query>"))
	}
	q, err := periodica.CompileQuery(src)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("canonical: %s\n", q)
	opt := q.Options()
	fmt.Printf("plan: threshold ψ=%v, periods [%s, %s], engine %s\n",
		opt.Threshold, orDefault(opt.MinPeriod, "1"), orDefault(opt.MaxPeriod, "n/2"), opt.Engine)
	if syms := q.Symbols(); len(syms) > 0 {
		fmt.Printf("      symbols %v\n", syms)
	}
	if n, by := q.Limit(); n > 0 {
		fmt.Printf("      limit %d by %s\n", n, by)
	}
	spec, err := json.MarshalIndent(q, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("spec: %s\n", spec)
}

// orDefault renders a bound, or its documented default when unset.
func orDefault(v int, def string) string {
	if v == 0 {
		return def
	}
	return fmt.Sprint(v)
}

func readSeries(path, format string, cfg prepConfig) (*periodica.Series, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }() // read-only; nothing to lose on close
		r = f
	}
	switch format {
	case "text":
		inner, err := series.ReadText(r)
		if err != nil {
			return nil, err
		}
		return periodica.NewSeriesFromString(inner.String())
	case "binary":
		inner, err := series.ReadBinary(r)
		if err != nil {
			return nil, err
		}
		return periodica.NewSeriesFromString(inner.String())
	case "values":
		values, err := series.ReadValues(r)
		if err != nil {
			return nil, err
		}
		if cfg.query != nil {
			return cfg.query.DiscretizeValues(values)
		}
		if cfg.sax {
			return periodica.DiscretizeSAX(values, periodica.SAXOptions{
				Levels: cfg.levels, Frame: cfg.paa, DetrendWindow: cfg.detrend,
			})
		}
		return periodica.DiscretizeEqualWidth(values, cfg.levels)
	case "events":
		events, err := readEvents(r)
		if err != nil {
			return nil, err
		}
		return periodica.GridEvents(events, cfg.bin, cfg.idle)
	}
	return nil, fmt.Errorf("unknown format %q (want text, binary, values)", format)
}

// readEvents parses "RFC3339-timestamp symbol" lines.
func readEvents(r io.Reader) ([]periodica.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []periodica.Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("events line %d: want \"<RFC3339 time> <symbol>\", got %q", line, text)
		}
		ts, err := time.Parse(time.RFC3339, fields[0])
		if err != nil {
			return nil, fmt.Errorf("events line %d: %v", line, err)
		}
		out = append(out, periodica.Event{Time: ts, Symbol: fields[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func printPeriods(periods []int, top int) {
	limit := len(periods)
	if top > 0 && top < limit {
		limit = top
	}
	var parts []string
	for _, p := range periods[:limit] {
		parts = append(parts, fmt.Sprint(p))
	}
	line := strings.Join(parts, ", ")
	if limit < len(periods) {
		line += ", …"
	}
	fmt.Printf("  %s\n", line)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "opminer:", err)
	os.Exit(1)
}
