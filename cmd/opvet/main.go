// Command opvet runs periodica's project-specific static-analysis
// rules (internal/analysis) over every package of the module and
// prints "file:line:col: rule: message" diagnostics. It exits 0 when
// the tree is clean, 1 when any diagnostic is reported, and 2 on usage
// or load errors — the same contract as go vet, so CI can gate on it.
//
// Usage:
//
//	opvet [-rules rule1,rule2] [-list] [packages]
//
// The package arguments are accepted for command-line symmetry with go
// vet but the analyzer always loads the whole module (the mutglobal
// call graph needs every package anyway, and stagestate keys on the
// pipeline packages internal/core and internal/exec); arguments other
// than ./... restrict which packages' findings are *printed*.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"periodica/internal/analysis"
)

func main() {
	var (
		rulesFlag = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list      = flag.Bool("list", false, "list the available rules and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range analysis.Rules() {
			fmt.Printf("%-14s %s\n", r.Name(), r.Doc())
		}
		return
	}

	rules := analysis.Rules()
	if *rulesFlag != "" {
		rules = rules[:0:0]
		for _, name := range strings.Split(*rulesFlag, ",") {
			name = strings.TrimSpace(name)
			r := analysis.RuleByName(name)
			if r == nil {
				fmt.Fprintf(os.Stderr, "opvet: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			rules = append(rules, r)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "opvet: %v\n", err)
		os.Exit(2)
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "opvet: %v\n", err)
		os.Exit(2)
	}

	keep := packageFilter(m, flag.Args())
	bad := false
	for _, d := range analysis.Run(m, rules) {
		if !keep(d.Pos.Filename) {
			continue
		}
		// Print module-relative paths so output is stable across
		// checkouts.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// packageFilter maps the go-vet-style package arguments to a filename
// predicate. No arguments, or any ./... argument, keeps everything;
// otherwise a file is kept when it lives under one of the named
// directories (./internal/fft style).
func packageFilter(m *analysis.Module, args []string) func(string) bool {
	if len(args) == 0 {
		return func(string) bool { return true }
	}
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "all" {
			return func(string) bool { return true }
		}
		a = strings.TrimSuffix(a, "/...")
		a = strings.TrimPrefix(a, "./")
		dirs = append(dirs, filepath.Join(m.Dir, filepath.FromSlash(a)))
	}
	return func(file string) bool {
		for _, d := range dirs {
			if file == d || strings.HasPrefix(file, d+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}
}
