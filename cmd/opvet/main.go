// Command opvet runs periodica's project-specific static-analysis
// rules (internal/analysis) over every package of the module and
// prints "file:line:col: rule: message" diagnostics. It exits 0 when
// the tree is clean, 1 when any diagnostic is reported, and 2 on usage
// or load errors — the same contract as go vet, so CI can gate on it.
//
// Usage:
//
//	opvet [-rules rule1,rule2] [-list] [-json file] [-gh] [packages]
//
// -json writes one JSON object per diagnostic line to the named file
// ("-" for stdout, replacing the plain-text form). -gh renders each
// diagnostic as a GitHub Actions ::error workflow command so findings
// annotate the offending lines inline on pull requests. The two
// compose: CI runs with -gh for annotations plus -json for an
// artifact. Load and rule wall-times go to stderr on every run.
//
// The package arguments are accepted for command-line symmetry with go
// vet but the analyzer always loads the whole module (the mutglobal
// call graph needs every package anyway, and stagestate keys on the
// pipeline packages internal/core and internal/exec); arguments other
// than ./... restrict which packages' findings are *printed*.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"periodica/internal/analysis"
)

func main() {
	var (
		rulesFlag = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list      = flag.Bool("list", false, "list the available rules and exit")
		jsonOut   = flag.String("json", "", "write diagnostics as JSON lines to this file (\"-\" for stdout)")
		ghMode    = flag.Bool("gh", false, "render diagnostics as GitHub Actions ::error annotations")
	)
	flag.Parse()

	if *list {
		for _, r := range analysis.Rules() {
			fmt.Printf("%-14s %s\n", r.Name(), r.Doc())
		}
		return
	}

	rules := analysis.Rules()
	if *rulesFlag != "" {
		rules = rules[:0:0]
		for _, name := range strings.Split(*rulesFlag, ",") {
			name = strings.TrimSpace(name)
			r := analysis.RuleByName(name)
			if r == nil {
				fmt.Fprintf(os.Stderr, "opvet: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			rules = append(rules, r)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "opvet: %v\n", err)
		os.Exit(2)
	}
	loadStart := time.Now()
	m, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "opvet: %v\n", err)
		os.Exit(2)
	}
	loadTime := time.Since(loadStart)

	runStart := time.Now()
	diags := analysis.Run(m, rules)
	runTime := time.Since(runStart)

	var jsonW io.Writer
	var jsonFile *os.File
	if *jsonOut == "-" {
		jsonW = os.Stdout
	} else if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opvet: %v\n", err)
			os.Exit(2)
		}
		jsonW = f
		jsonFile = f
	}

	keep := packageFilter(m, flag.Args())
	bad := false
	for _, d := range diags {
		if !keep(d.Pos.Filename) {
			continue
		}
		// Print module-relative paths so output is stable across
		// checkouts (and so GitHub can map annotations onto the diff).
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		bad = true
		if jsonW != nil {
			writeJSONLine(jsonW, d)
		}
		switch {
		case *ghMode:
			fmt.Println(ghAnnotation(d))
		case jsonW == os.Stdout:
			// JSON on stdout replaces the plain-text form.
		default:
			fmt.Println(d)
		}
	}
	if jsonFile != nil {
		if err := jsonFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "opvet: closing %s: %v\n", *jsonOut, err)
			os.Exit(2)
		}
	}
	fmt.Fprintf(os.Stderr, "opvet: %d packages loaded in %v, %d rules in %v\n",
		len(m.Packages), loadTime.Round(time.Millisecond), len(rules), runTime.Round(time.Millisecond))
	if bad {
		os.Exit(1)
	}
}

// jsonDiag is the stable wire form of a diagnostic: one object per
// line, flat fields, no nesting — trivially consumable by jq or a
// GitHub problem matcher.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func writeJSONLine(w io.Writer, d analysis.Diagnostic) {
	b, err := json.Marshal(jsonDiag{
		File:    filepath.ToSlash(d.Pos.Filename),
		Line:    d.Pos.Line,
		Col:     d.Pos.Column,
		Rule:    d.Rule,
		Message: d.Message,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "opvet: encoding diagnostic: %v\n", err)
		os.Exit(2)
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "opvet: writing diagnostic: %v\n", err)
		os.Exit(2)
	}
}

// ghAnnotation renders a diagnostic as a GitHub Actions workflow
// command; the runner turns it into an inline PR annotation. Property
// values additionally need , and : escaped; the message only %, \r, \n.
func ghAnnotation(d analysis.Diagnostic) string {
	msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	prop := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ",", "%2C", ":", "%3A")
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=opvet %s::%s",
		prop.Replace(filepath.ToSlash(d.Pos.Filename)), d.Pos.Line, d.Pos.Column,
		prop.Replace(d.Rule), msg.Replace(d.Rule+": "+d.Message))
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// packageFilter maps the go-vet-style package arguments to a filename
// predicate. No arguments, or any ./... argument, keeps everything;
// otherwise a file is kept when it lives under one of the named
// directories (./internal/fft style).
func packageFilter(m *analysis.Module, args []string) func(string) bool {
	if len(args) == 0 {
		return func(string) bool { return true }
	}
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "all" {
			return func(string) bool { return true }
		}
		a = strings.TrimSuffix(a, "/...")
		a = strings.TrimPrefix(a, "./")
		dirs = append(dirs, filepath.Join(m.Dir, filepath.FromSlash(a)))
	}
	return func(file string) bool {
		for _, d := range dirs {
			if file == d || strings.HasPrefix(file, d+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}
}
