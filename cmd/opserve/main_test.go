package main

import (
	"reflect"
	"testing"
)

func TestParseWorkers(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{" , ,", nil},
		{"http://a:1", []string{"http://a:1"}},
		{"http://a:1,http://b:2", []string{"http://a:1", "http://b:2"}},
		{" http://a:1 , http://b:2/ ,", []string{"http://a:1", "http://b:2"}},
	}
	for _, c := range cases {
		if got := parseWorkers(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseWorkers(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
