// Command opserve runs the mining service over HTTP:
//
//	opserve -addr :8723
//
//	curl -s localhost:8723/healthz
//	curl -s localhost:8723/v1/mine -d '{"symbols":"abcabbabcb","threshold":0.66}'
//	curl -s localhost:8723/v1/candidates -d '{"values":[1,5,9,1,5,9],"levels":3,"threshold":1}'
//	curl -s localhost:8723/metrics
//
// The server shuts down gracefully on SIGINT/SIGTERM: /readyz starts
// reporting 503 so load balancers stop routing, in-flight requests are
// drained for up to -drain-timeout, and the process exits 0 on a clean
// drain.
//
// /metrics includes the mining pipeline's own instrumentation —
// periodica_stage_duration_seconds{stage} per pipeline stage and
// periodica_exec_queue_depth for the execution scheduler — alongside
// the HTTP request counters and histograms.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"periodica"
	"periodica/internal/cli"
	"periodica/internal/dist"
	"periodica/internal/fft"
	"periodica/internal/httpapi"
)

// parseWorkers splits the -workers flag: comma-separated base URLs with
// whitespace tolerated, empties dropped, and trailing slashes trimmed (the
// shard client appends its own path).
func parseWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, strings.TrimRight(w, "/"))
		}
	}
	return out
}

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8723", "listen address")
	maxConcurrency := flag.Int("max-concurrency", 0, "max simultaneous mining requests (0 = 2×GOMAXPROCS); excess requests are shed with 429")
	requestTimeout := flag.Duration("request-timeout", httpapi.DefaultRequestTimeout, "per-request mining deadline (0 = default, negative = no deadline)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	pprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	tuneFile := flag.String("tune", "", "load a convolution tuned-profile JSON (default $PERIODICA_TUNE_FILE)")
	autotune := flag.Duration("autotune", 0, "calibrate the convolution crossovers at startup (sweep duration; with -tune, saves the profile there)")
	workers := flag.String("workers", "", "comma-separated worker base URLs; when set, /v1/mine is sharded across them (this process coordinates)")
	shardsPerWorker := flag.Int("shards-per-worker", 0, "distributed: target shards per worker (0 = default 2)")
	shardAttempts := flag.Int("shard-attempts", 0, "distributed: dispatch attempts per shard before local fallback (0 = default 3)")
	shardBackoff := flag.Duration("shard-retry-backoff", 0, "distributed: base retry backoff, doubled per attempt with jitter (0 = default 100ms)")
	hedgeAfter := flag.Duration("hedge-after", 0, "distributed: re-dispatch a straggling shard to a second worker after this long (0 = off)")
	noLocalFallback := flag.Bool("no-local-fallback", false, "distributed: fail a shard that exhausts its attempts instead of computing it locally")
	shardSeed := flag.Int64("shard-seed", 0, "distributed: seed for retry jitter and verification sampling, for reproducible runs (0 = default seed 1)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "distributed: consecutive failures that open a worker's circuit (0 = default 3)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "distributed: open-circuit cooldown before a half-open probe, doubled per failed probe (0 = default 1s)")
	verifyShards := flag.Float64("verify-shards", 0, "distributed: fraction of shards (0..1) double-dispatched to a second worker and cross-checked; mismatches are recomputed locally")
	shardJournal := flag.String("shard-journal", "", "distributed: checkpoint completed shards to this file so an interrupted mine resumes instead of restarting")
	defaultQuery := flag.String("query", "", "default pattern query for requests that carry no mining parameters (default $PERIODICA_QUERY)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// The default query is compiled once at startup — a typo fails the boot,
	// not the first parameterless request — and the canonical form is what
	// the handlers apply and the logs show.
	querySrc := *defaultQuery
	if querySrc == "" {
		querySrc = os.Getenv("PERIODICA_QUERY")
	}
	if querySrc != "" {
		q, err := periodica.CompileQuery(querySrc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opserve: -query: %v\n", err)
			return 1
		}
		querySrc = q.String()
		logger.Info("default pattern query set", "query", querySrc)
	}

	// Tuning moves work between byte-identical kernels, so it changes serving
	// latency but never a response body. Calibrate/load before accepting
	// traffic and log the provenance so deployments can tell tuned replicas
	// from pinned ones. The explicit flags are hard requirements; an
	// environment profile is advisory and falls back to pinned defaults.
	err := cli.BootstrapTuning(*autotune, *tuneFile, func(msg string) {
		logger.Warn("tuning profile skipped", "reason", msg)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "opserve: %v\n", err)
		return 1
	}
	if p := fft.Tuned(); p != nil {
		logger.Info("fft tuned profile applied",
			"source", p.Source, "host", p.Host,
			"engineCrossover", p.EngineCrossover,
			"parallelThreshold", p.ParallelThreshold,
			"fourStepMin", p.FourStepMin)
	} else {
		logger.Info("fft tuning: pinned defaults (no profile)")
	}

	var distributor httpapi.Distributor
	if urls := parseWorkers(*workers); len(urls) > 0 {
		coord, err := dist.New(dist.Config{
			Workers:              urls,
			ShardsPerWorker:      *shardsPerWorker,
			MaxAttempts:          *shardAttempts,
			RetryBackoff:         *shardBackoff,
			HedgeAfter:           *hedgeAfter,
			DisableLocalFallback: *noLocalFallback,
			Seed:                 *shardSeed,
			BreakerThreshold:     *breakerThreshold,
			BreakerCooldown:      *breakerCooldown,
			VerifyShards:         *verifyShards,
			ResumeJournal:        *shardJournal,
			Logger:               logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "opserve: %v\n", err)
			return 1
		}
		distributor = coord
		logger.Info("distributed mining enabled",
			"workers", urls, "hedgeAfter", *hedgeAfter, "localFallback", !*noLocalFallback,
			"verifyShards", *verifyShards, "journal", *shardJournal)
	}

	api := httpapi.New(httpapi.Config{
		MaxConcurrency: *maxConcurrency,
		RequestTimeout: *requestTimeout,
		EnablePprof:    *pprof,
		Logger:         logger,
		Distributor:    distributor,
		DefaultQuery:   querySrc,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "opserve: listen %s: %v\n", *addr, err)
		return 1
	}

	hs := &http.Server{
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Info("periodica mining service listening", "addr", ln.Addr().String())
	if err := api.Run(ctx, hs, ln, *drainTimeout); err != nil {
		logger.Error("server error", "err", err)
		return 1
	}
	logger.Info("shutdown complete")
	return 0
}
