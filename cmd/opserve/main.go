// Command opserve runs the mining service over HTTP:
//
//	opserve -addr :8723
//
//	curl -s localhost:8723/healthz
//	curl -s localhost:8723/v1/mine -d '{"symbols":"abcabbabcb","threshold":0.66}'
//	curl -s localhost:8723/v1/candidates -d '{"values":[1,5,9,1,5,9],"levels":3,"threshold":1}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"periodica/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
	}
	log.Printf("periodica mining service listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
