// Command opserve runs the mining service over HTTP:
//
//	opserve -addr :8723
//
//	curl -s localhost:8723/healthz
//	curl -s localhost:8723/v1/mine -d '{"symbols":"abcabbabcb","threshold":0.66}'
//	curl -s localhost:8723/v1/candidates -d '{"values":[1,5,9,1,5,9],"levels":3,"threshold":1}'
//	curl -s localhost:8723/metrics
//
// The server shuts down gracefully on SIGINT/SIGTERM: /readyz starts
// reporting 503 so load balancers stop routing, in-flight requests are
// drained for up to -drain-timeout, and the process exits 0 on a clean
// drain.
//
// /metrics includes the mining pipeline's own instrumentation —
// periodica_stage_duration_seconds{stage} per pipeline stage and
// periodica_exec_queue_depth for the execution scheduler — alongside
// the HTTP request counters and histograms.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"periodica"
	"periodica/internal/fft"
	"periodica/internal/httpapi"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8723", "listen address")
	maxConcurrency := flag.Int("max-concurrency", 0, "max simultaneous mining requests (0 = 2×GOMAXPROCS); excess requests are shed with 429")
	requestTimeout := flag.Duration("request-timeout", httpapi.DefaultRequestTimeout, "per-request mining deadline (0 = default, negative = no deadline)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	pprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	tuneFile := flag.String("tune", "", "load a convolution tuned-profile JSON (default $PERIODICA_TUNE_FILE)")
	autotune := flag.Duration("autotune", 0, "calibrate the convolution crossovers at startup (sweep duration; with -tune, saves the profile there)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// Tuning moves work between byte-identical kernels, so it changes serving
	// latency but never a response body. Calibrate/load before accepting
	// traffic and log the provenance so deployments can tell tuned replicas
	// from pinned ones.
	switch {
	case *autotune > 0 && *tuneFile != "":
		if err := periodica.AutotuneToFile(*autotune, *tuneFile); err != nil {
			fmt.Fprintf(os.Stderr, "opserve: autotune: %v\n", err)
			return 1
		}
	case *autotune > 0:
		periodica.Autotune(*autotune)
	case *tuneFile != "":
		if err := periodica.LoadTuneFile(*tuneFile); err != nil {
			fmt.Fprintf(os.Stderr, "opserve: %v\n", err)
			return 1
		}
	default:
		if _, err := periodica.LoadTuneFromEnv(); err != nil {
			fmt.Fprintf(os.Stderr, "opserve: %s: %v\n", periodica.TuneFileEnv, err)
			return 1
		}
	}
	if p := fft.Tuned(); p != nil {
		logger.Info("fft tuned profile applied",
			"source", p.Source, "host", p.Host,
			"engineCrossover", p.EngineCrossover,
			"parallelThreshold", p.ParallelThreshold,
			"fourStepMin", p.FourStepMin)
	} else {
		logger.Info("fft tuning: pinned defaults (no profile)")
	}

	api := httpapi.New(httpapi.Config{
		MaxConcurrency: *maxConcurrency,
		RequestTimeout: *requestTimeout,
		EnablePprof:    *pprof,
		Logger:         logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "opserve: listen %s: %v\n", *addr, err)
		return 1
	}

	hs := &http.Server{
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Info("periodica mining service listening", "addr", ln.Addr().String())
	if err := api.Run(ctx, hs, ln, *drainTimeout); err != nil {
		logger.Error("server error", "err", err)
		return 1
	}
	logger.Info("shutdown complete")
	return 0
}
