// Command opstore manages an on-disk symbol store and answers periodicity
// queries over its history from the persisted per-segment summaries.
//
// Usage:
//
//	opstore -dir ./events init -sigma 5 -max-period 128 -segment 4096
//	opgen -kind walmart | opstore -dir ./events append
//	opstore -dir ./events info
//	opstore -dir ./events query -threshold 0.8 -from 0 -to 3 -top 20
//	opstore -dir ./events verify
//	opstore -dir ./events repair
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"unicode"

	"periodica/internal/alphabet"
	"periodica/internal/core"
	"periodica/internal/query"
	"periodica/internal/store"
)

func main() {
	dir := flag.String("dir", "", "store directory (required)")
	flag.Parse()
	if *dir == "" || flag.NArg() < 1 {
		fatal(fmt.Errorf("usage: opstore -dir <path> {init|append|info|query|mine|verify|repair} [flags]"))
	}
	var err error
	switch cmd := flag.Arg(0); cmd {
	case "init":
		err = runInit(*dir, flag.Args()[1:])
	case "append":
		err = runAppend(*dir, flag.Args()[1:])
	case "info":
		err = runInfo(*dir)
	case "query":
		err = runQuery(*dir, flag.Args()[1:])
	case "mine":
		err = runMine(*dir, flag.Args()[1:])
	case "verify":
		err = runVerify(*dir, os.Stdout)
	case "repair":
		err = runRepair(*dir, os.Stdout)
	default:
		err = fmt.Errorf("unknown command %q (want init, append, info, query, mine, verify, repair)", cmd)
	}
	if err != nil {
		fatal(err)
	}
}

func runInit(dir string, args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	sigma := fs.Int("sigma", 5, "alphabet size (1..26, symbols a..)")
	maxPeriod := fs.Int("max-period", 128, "largest summarized period")
	segment := fs.Int("segment", 4096, "symbols per sealed segment")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, err := store.Open(dir, store.Options{Sigma: *sigma, MaxPeriod: *maxPeriod, SegmentSize: *segment})
	if err != nil {
		return err
	}
	fmt.Printf("store initialized at %s (σ=%d, maxPeriod=%d, segment=%d)\n", dir, *sigma, *maxPeriod, *segment)
	return db.Close()
}

func runAppend(dir string, args []string) error {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	in := fs.String("in", "", "input file of single-rune symbols (default stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, err := store.OpenExisting(dir)
	if err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }() // read-only; nothing to lose on close
		r = f
	}
	br := bufio.NewReader(r)
	appended := 0
	for {
		ch, _, err := br.ReadRune()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if unicode.IsSpace(ch) {
			continue
		}
		k, err := parseSymbol(ch, db.Sigma())
		if err != nil {
			return fmt.Errorf("input symbol %d: %w", appended+1, err)
		}
		if err := db.Append(k); err != nil {
			return err
		}
		appended++
	}
	if err := db.Close(); err != nil {
		return err
	}
	fmt.Printf("appended %d symbols; store now holds %d symbols in %d segments\n",
		appended, db.Len(), db.Segments())
	return nil
}

func runInfo(dir string) error {
	db, err := store.OpenExisting(dir)
	if err != nil {
		return err
	}
	fmt.Printf("store %s: %d symbols, %d sealed segments, σ=%d, maxPeriod=%d\n",
		dir, db.Len(), db.Segments(), db.Sigma(), db.MaxPeriod())
	return nil
}

func runQuery(dir string, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.8, "periodicity threshold ψ")
	from := fs.Int("from", 0, "first segment (inclusive)")
	to := fs.Int("to", -1, "last segment (exclusive; -1 = all)")
	top := fs.Int("top", 25, "rows printed (0 = all)")
	minPairs := fs.Int("min-pairs", 2, "minimum projection pairs behind a reported periodicity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, err := store.OpenExisting(dir)
	if err != nil {
		return err
	}
	if *to < 0 {
		*to = db.Segments()
	}
	pers, err := db.PeriodicitiesRange(*from, *to, *threshold)
	if err != nil {
		return err
	}
	sort.Slice(pers, func(i, j int) bool {
		if pers[i].Confidence != pers[j].Confidence { //opvet:ignore floatcmp exact tie-break in sort comparator
			return pers[i].Confidence > pers[j].Confidence
		}
		return pers[i].Period < pers[j].Period
	})
	printed := 0
	for _, sp := range pers {
		if sp.Pairs < *minPairs {
			continue
		}
		if *top > 0 && printed >= *top {
			fmt.Println("  …")
			break
		}
		fmt.Printf("  symbol %c  period %-6d position %-6d confidence %.3f (%d/%d)\n",
			'a'+sp.Symbol, sp.Period, sp.Position, sp.Confidence, sp.F2, sp.Pairs)
		printed++
	}
	if printed == 0 {
		fmt.Println("  no periodicities at this threshold")
	}
	return nil
}

func runMine(dir string, args []string) error {
	fs := flag.NewFlagSet("mine", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.8, "periodicity threshold ψ")
	from := fs.Int("from", 0, "first segment (inclusive)")
	to := fs.Int("to", -1, "last segment (exclusive; -1 = all, including active)")
	maxPatP := fs.Int("max-pattern-period", 128, "largest period mined for patterns")
	top := fs.Int("top", 20, "patterns printed (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, err := store.OpenExisting(dir)
	if err != nil {
		return err
	}
	if *to < 0 {
		*to = db.Segments()
	}
	opt, err := core.OptionsFromSpec(query.Spec{Threshold: *threshold, MaxPatternPeriod: *maxPatP})
	if err != nil {
		return err
	}
	res, err := db.Mine(*from, *to, opt)
	if err != nil {
		return err
	}
	fmt.Printf("segments [%d,%d): %d periods, %d periodicities, %d patterns\n",
		*from, *to, len(res.Periods), len(res.Periodicities), len(res.Patterns))
	alpha := alphabetLetters(db.Sigma())
	for i, pt := range res.Patterns {
		if *top > 0 && i >= *top {
			fmt.Printf("  … %d more\n", len(res.Patterns)-i)
			break
		}
		fmt.Printf("  p=%-5d %-40s support %.1f%%\n", pt.Period, pt.Render(alpha), pt.Support*100)
	}
	return nil
}

// parseSymbol maps one input rune onto the store's alphabet a..a+σ-1,
// rejecting anything else — including non-letter runes and letters past the
// configured alphabet — with an error naming the accepted range.
func parseSymbol(ch rune, sigma int) (int, error) {
	last := rune('a' + sigma - 1)
	if ch < 'a' || ch > 'z' {
		return 0, fmt.Errorf("symbol %q is not a lowercase letter; the store accepts a..%c (σ=%d)", ch, last, sigma)
	}
	k := int(ch - 'a')
	if k >= sigma {
		return 0, fmt.Errorf("symbol %q is outside the store alphabet a..%c (σ=%d)", ch, last, sigma)
	}
	return k, nil
}

func runVerify(dir string, w io.Writer) error {
	rep, err := store.Verify(dir)
	if err != nil {
		return err
	}
	printReport(w, rep)
	if !rep.Clean() {
		return fmt.Errorf("%d problem(s) found; run `opstore -dir %s repair` to recover", len(rep.Problems), dir)
	}
	_, _ = fmt.Fprintln(w, "store is clean") // CLI output; write errors are not actionable
	return nil
}

func runRepair(dir string, w io.Writer) error {
	rep, err := store.Repair(dir)
	if err != nil {
		return err
	}
	for _, a := range rep.Actions {
		_, _ = fmt.Fprintln(w, "repaired:", a) // CLI output; write errors are not actionable
	}
	if len(rep.Actions) == 0 {
		_, _ = fmt.Fprintln(w, "nothing to repair") // CLI output; write errors are not actionable
	}
	printReport(w, rep)
	if !rep.Clean() {
		return fmt.Errorf("%d problem(s) remain after repair", len(rep.Problems))
	}
	return nil
}

func printReport(w io.Writer, rep *store.Report) {
	_, _ = fmt.Fprintf(w, "store %s: %d healthy segment(s), %d symbol(s)\n", rep.Dir, rep.Segments, rep.Symbols) // CLI output; write errors are not actionable
	for _, p := range rep.Problems {
		_, _ = fmt.Fprintln(w, "problem:", p.String()) // CLI output; write errors are not actionable
	}
}

func alphabetLetters(sigma int) *alphabet.Alphabet { return alphabet.Letters(sigma) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "opstore:", err)
	os.Exit(1)
}
