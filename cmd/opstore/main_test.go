package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"periodica/internal/store"
)

func TestParseSymbol(t *testing.T) {
	cases := []struct {
		ch    rune
		sigma int
		want  int
		errIs string // substring the error must carry; empty = no error
	}{
		{'a', 5, 0, ""},
		{'e', 5, 4, ""},
		{'f', 5, 0, "a..e (σ=5)"}, // one past the configured alphabet
		{'z', 5, 0, "a..e (σ=5)"}, // far past it
		{'A', 5, 0, "not a lowercase"},
		{'3', 5, 0, "not a lowercase"},
		{'λ', 5, 0, "not a lowercase"}, // oversized rune must not wrap into range
		{'é', 5, 0, "not a lowercase"},
		{'\x00', 5, 0, "not a lowercase"},
		{'z', 26, 25, ""},
	}
	for _, c := range cases {
		got, err := parseSymbol(c.ch, c.sigma)
		if c.errIs == "" {
			if err != nil {
				t.Errorf("parseSymbol(%q, %d): unexpected error %v", c.ch, c.sigma, err)
			} else if got != c.want {
				t.Errorf("parseSymbol(%q, %d) = %d, want %d", c.ch, c.sigma, got, c.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("parseSymbol(%q, %d): want error containing %q, got %d", c.ch, c.sigma, c.errIs, got)
		} else if !strings.Contains(err.Error(), c.errIs) {
			t.Errorf("parseSymbol(%q, %d): error %q does not mention %q", c.ch, c.sigma, err, c.errIs)
		}
	}
}

func TestVerifyRepairCommands(t *testing.T) {
	dir := t.TempDir()
	db, err := store.Open(dir, store.Options{Sigma: 3, MaxPeriod: 4, SegmentSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := db.Append(i % 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := runVerify(dir, &out); err != nil {
		t.Fatalf("verify on a clean store: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "store is clean") {
		t.Fatalf("verify output missing clean notice:\n%s", out.String())
	}

	// Corrupt a summary: verify must fail and name the file, repair must
	// rebuild it, and a second verify must pass.
	sum := filepath.Join(dir, "00000000.sum")
	raw, err := os.ReadFile(sum)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(sum, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	err = runVerify(dir, &out)
	if err == nil {
		t.Fatalf("verify missed the corruption:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "repair") {
		t.Fatalf("verify error %q does not point at repair", err)
	}
	if !strings.Contains(out.String(), "00000000.sum") {
		t.Fatalf("verify output does not name the damaged file:\n%s", out.String())
	}

	out.Reset()
	if err := runRepair(dir, &out); err != nil {
		t.Fatalf("repair: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "rebuilt summary") {
		t.Fatalf("repair output missing the rebuild action:\n%s", out.String())
	}
	out.Reset()
	if err := runVerify(dir, &out); err != nil {
		t.Fatalf("verify after repair: %v\n%s", err, out.String())
	}
}
