package periodica_test

// Cross-path parity: the batch, context, parallel, streaming, and
// incremental entry points are all thin adapters over one session pipeline,
// so the same symbol sequence must yield byte-identical Results through
// every path, for every engine — and under cancellation every path must
// return context.Canceled with no partial result. CI runs these under
// `go test -run Parity -race` across PERIODICA_ENGINE={naive,bitset,fft}.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sync"
	"testing"

	"periodica"
)

// parityEngines returns the engines to exercise: the one named by the
// PERIODICA_ENGINE environment variable (the CI matrix), or all of them.
func parityEngines(t *testing.T) map[string]periodica.Engine {
	t.Helper()
	all := map[string]periodica.Engine{
		"naive":  periodica.EngineNaive,
		"bitset": periodica.EngineBitset,
		"fft":    periodica.EngineFFT,
	}
	name := os.Getenv("PERIODICA_ENGINE")
	if name == "" {
		return all
	}
	eng, ok := all[name]
	if !ok {
		t.Fatalf("PERIODICA_ENGINE=%q is not naive, bitset, or fft", name)
	}
	return map[string]periodica.Engine{name: eng}
}

// paritySymbols builds a noisy periodic sequence over a three-symbol
// alphabet: period 7 with a fixed motif, 20% replacement noise.
func paritySymbols(n int) []string {
	motif := []string{"a", "b", "a", "c", "b", "b", "c"}
	alpha := []string{"a", "b", "c"}
	rng := rand.New(rand.NewSource(11))
	out := make([]string, n)
	for i := range out {
		out[i] = motif[i%len(motif)]
		if rng.Intn(5) == 0 {
			out[i] = alpha[rng.Intn(len(alpha))]
		}
	}
	return out
}

// mineAllPaths runs the same symbols and options through every entry point
// and returns the per-path results, keyed by path name.
func mineAllPaths(t *testing.T, symbols []string, opt periodica.Options) map[string]*periodica.Result {
	t.Helper()
	out := map[string]*periodica.Result{}

	s, err := periodica.NewSeries(symbols)
	if err != nil {
		t.Fatal(err)
	}
	if out["Mine"], err = periodica.Mine(s, opt); err != nil {
		t.Fatalf("Mine: %v", err)
	}
	if out["MineContext"], err = periodica.MineContext(context.Background(), s, opt); err != nil {
		t.Fatalf("MineContext: %v", err)
	}

	alpha := []string{"a", "b", "c"}
	st, err := periodica.NewStream(alpha...)
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range symbols {
		if err := st.Append(sym); err != nil {
			t.Fatal(err)
		}
	}
	if out["Stream.Finish"], err = st.Finish(opt); err != nil {
		t.Fatalf("Stream.Finish: %v", err)
	}
	if out["Stream.FinishContext"], err = st.FinishContext(context.Background(), opt); err != nil {
		t.Fatalf("Stream.FinishContext: %v", err)
	}

	inc, err := periodica.NewIncremental(len(symbols)/2, alpha...)
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range symbols {
		if err := inc.Append(sym); err != nil {
			t.Fatal(err)
		}
	}
	if out["Incremental.Mine"], err = inc.Mine(opt); err != nil {
		t.Fatalf("Incremental.Mine: %v", err)
	}
	if out["Incremental.MineContext"], err = inc.MineContext(context.Background(), opt); err != nil {
		t.Fatalf("Incremental.MineContext: %v", err)
	}
	return out
}

func TestParityAcrossPaths(t *testing.T) {
	for _, n := range []int{605, 5000} { // below and above the auto FFT crossover
		for name, eng := range parityEngines(t) {
			if eng == periodica.EngineNaive && n > 1000 {
				// Keep the quadratic reference to the small input; the
				// engines were already cross-checked against it there.
				continue
			}
			t.Run(fmt.Sprintf("n=%d/%s", n, name), func(t *testing.T) {
				symbols := paritySymbols(n)
				opt := periodica.Options{Threshold: 0.6, Engine: eng, MinPairs: 3, MaxPatternPeriod: 21}
				results := mineAllPaths(t, symbols, opt)
				base := results["Mine"]
				if len(base.Periodicities) == 0 {
					t.Fatal("parity fixture detected nothing; the test is vacuous")
				}
				for path, res := range results {
					if !reflect.DeepEqual(base, res) {
						t.Errorf("%s result differs from Mine", path)
					}
				}
			})
		}
	}
}

func TestParityAutoEngine(t *testing.T) {
	// EngineAuto must resolve identically on every path (one resolver).
	symbols := paritySymbols(5000)
	opt := periodica.Options{Threshold: 0.6, MinPairs: 3, MaxPatternPeriod: 21}
	results := mineAllPaths(t, symbols, opt)
	base := results["Mine"]
	for path, res := range results {
		if !reflect.DeepEqual(base, res) {
			t.Errorf("%s result differs from Mine under EngineAuto", path)
		}
	}
	// MineParallel shares the pipeline with a wider scheduler; its result
	// must match the serial mine exactly.
	s, err := periodica.NewSeries(symbols)
	if err != nil {
		t.Fatal(err)
	}
	par, err := periodica.MineParallel(s, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, par) {
		t.Error("MineParallel result differs from Mine")
	}
}

// TestParityTunedProfile: a tuned profile (fft crossovers measured by
// Autotune, or loaded via PERIODICA_TUNE_FILE) may move work between
// kernels and engines but must never change a byte of the mining result —
// across every entry point, every engine, and any worker count.
func TestParityTunedProfile(t *testing.T) {
	defer periodica.ResetTuning()
	symbols := paritySymbols(5000)
	opt := periodica.Options{Threshold: 0.6, MinPairs: 3, MaxPatternPeriod: 21}

	periodica.ResetTuning()
	baseline := mineAllPaths(t, symbols, opt)
	base := baseline["Mine"]
	if len(base.Periodicities) == 0 {
		t.Fatal("tuned-parity fixture detected nothing; the test is vacuous")
	}

	// A real calibration sweep, persisted and reloaded through the same
	// file/env path deployments use.
	tuneFile := t.TempDir() + "/tune.json"
	if err := periodica.AutotuneToFile(50_000_000 /* 50ms */, tuneFile); err != nil {
		t.Fatal(err)
	}
	tunedResults := mineAllPaths(t, symbols, opt)
	for path, res := range tunedResults {
		if !reflect.DeepEqual(base, res) {
			t.Errorf("%s result differs under the autotuned profile", path)
		}
	}

	periodica.ResetTuning()
	t.Setenv(periodica.TuneFileEnv, tuneFile)
	if ok, err := periodica.LoadTuneFromEnv(); err != nil || !ok {
		t.Fatalf("LoadTuneFromEnv: (%v, %v)", ok, err)
	}
	s, err := periodica.NewSeries(symbols)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := periodica.Mine(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, fromFile) {
		t.Error("result differs under the profile loaded from PERIODICA_TUNE_FILE")
	}
	for _, workers := range []int{2, 8} {
		par, err := periodica.MineParallel(s, opt, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, par) {
			t.Errorf("MineParallel(workers=%d) differs under the tuned profile", workers)
		}
	}
}

// countdownCtx is a context whose Err starts returning context.Canceled
// after a fixed number of polls — deterministic mid-run cancellation,
// independent of timing.
type countdownCtx struct {
	context.Context
	mu        sync.Mutex
	remaining int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

func TestParityCancellation(t *testing.T) {
	symbols := paritySymbols(5000)
	for name, eng := range parityEngines(t) {
		t.Run(name, func(t *testing.T) {
			opt := periodica.Options{Threshold: 0.6, Engine: eng, MinPairs: 3, MaxPatternPeriod: 21}

			cancelled, cancel := context.WithCancel(context.Background())
			cancel()

			// Pre-cancelled and mid-run cancellation: every path must
			// return context.Canceled and no partial result.
			for _, polls := range []int{0, 25} {
				s, err := periodica.NewSeries(symbols)
				if err != nil {
					t.Fatal(err)
				}
				st, err := periodica.NewStream("a", "b", "c")
				if err != nil {
					t.Fatal(err)
				}
				inc, err := periodica.NewIncremental(len(symbols)/2, "a", "b", "c")
				if err != nil {
					t.Fatal(err)
				}
				for _, sym := range symbols {
					if err := st.Append(sym); err != nil {
						t.Fatal(err)
					}
					if err := inc.Append(sym); err != nil {
						t.Fatal(err)
					}
				}
				ctxFor := func() context.Context {
					if polls == 0 {
						return cancelled
					}
					return &countdownCtx{Context: context.Background(), remaining: polls}
				}
				type attempt struct {
					path string
					res  *periodica.Result
					err  error
				}
				var attempts []attempt
				res, err := periodica.MineContext(ctxFor(), s, opt)
				attempts = append(attempts, attempt{"MineContext", res, err})
				res, err = st.FinishContext(ctxFor(), opt)
				attempts = append(attempts, attempt{"Stream.FinishContext", res, err})
				res, err = inc.MineContext(ctxFor(), opt)
				attempts = append(attempts, attempt{"Incremental.MineContext", res, err})
				for _, a := range attempts {
					if !errors.Is(a.err, context.Canceled) {
						t.Errorf("polls=%d %s error = %v, want context.Canceled", polls, a.path, a.err)
					}
					if a.res != nil {
						t.Errorf("polls=%d %s returned a partial result alongside cancellation", polls, a.path)
					}
					if errors.Is(a.err, periodica.ErrInvalidInput) {
						t.Errorf("polls=%d %s cancellation must not look like invalid input", polls, a.path)
					}
				}
			}
		})
	}
}
