// Package periodica mines obscure periodic patterns in symbol time series:
// periodic patterns whose period is unknown a priori, discovered as part of
// the mining process itself. It implements the convolution-based one-pass
// algorithm of Elfeky, Aref and Elmagarmid ("Using Convolution to Mine
// Obscure Periodic Patterns in One Pass", EDBT 2004): the series is mapped
// to a binary vector under a power-of-two symbol encoding, a modified
// convolution — evaluated with FFTs in O(n log n) — compares the series
// against every shift of itself at once, and the matches it encodes yield,
// for every candidate period, the periodic symbols, their positions, and
// candidate multi-symbol patterns with estimated support.
//
// Typical use:
//
//	s, err := periodica.NewSeriesFromString("abcabbabcb")
//	res, err := periodica.Mine(s, periodica.Options{Threshold: 0.6})
//	for _, pt := range res.Patterns {
//		fmt.Println(pt.Text, pt.Support)
//	}
//
// Numeric series are discretized first (DiscretizeEqualWidth,
// DiscretizeBreakpoints, DiscretizeSAX) and irregular timestamped events are
// binned with GridEvents; streams are mined in one pass with Stream, online
// with Incremental (which also merges adjacent segments), and over a sliding
// window with Monitor. CandidatePeriods runs only the O(σ n log n) detection
// phase — also available over on-disk series (CandidatePeriodsFile, via an
// out-of-core FFT) and in parallel (CandidatePeriodsParallel, MineParallel).
// Long-running mines accept a context for cancellation and deadlines
// (MineContext, CandidatePeriodsContext). Significant separates genuine
// structure from the confident-looking flukes the paper's Definition 1
// admits at large periods.
package periodica

import (
	"fmt"

	"periodica/internal/alphabet"
	"periodica/internal/core"
	"periodica/internal/discretize"
	"periodica/internal/query"
	"periodica/internal/series"
)

// Series is a discretized symbol time series.
type Series struct {
	inner *series.Series
}

// NewSeries builds a series from a slice of symbols; the alphabet is the set
// of distinct symbols in order of first appearance.
func NewSeries(symbols []string) (*Series, error) {
	if len(symbols) == 0 {
		return nil, fmt.Errorf("periodica: empty series")
	}
	var distinct []string
	seen := map[string]bool{}
	for _, s := range symbols {
		if !seen[s] {
			seen[s] = true
			distinct = append(distinct, s)
		}
	}
	alpha, err := alphabet.New(distinct...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(symbols))
	for i, s := range symbols {
		idx[i], _ = alpha.Index(s)
	}
	inner, err := series.New(alpha, idx)
	if err != nil {
		return nil, err
	}
	return &Series{inner: inner}, nil
}

// NewSeriesFromString builds a series of single-rune symbols; the alphabet is
// the set of distinct runes in sorted order.
func NewSeriesFromString(text string) (*Series, error) {
	if text == "" {
		return nil, fmt.Errorf("periodica: empty series")
	}
	return &Series{inner: series.FromString(text)}, nil
}

// DiscretizeEqualWidth discretizes numeric values into the given number of
// equal-width levels over [min(values), max(values)], using single-letter
// symbols "a", "b", … from lowest to highest level.
func DiscretizeEqualWidth(values []float64, levels int) (*Series, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("periodica: no values")
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scheme, err := discretize.NewEqualWidth(lo, hi, levels)
	if err != nil {
		return nil, err
	}
	inner, err := scheme.Apply(values, alphabet.Letters(levels))
	if err != nil {
		return nil, err
	}
	return &Series{inner: inner}, nil
}

// DiscretizeBreakpoints discretizes numeric values with explicit ascending
// breakpoints into len(breaks)+1 levels, using single-letter symbols "a",
// "b", … from lowest to highest level.
func DiscretizeBreakpoints(values, breaks []float64) (*Series, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("periodica: no values")
	}
	scheme, err := discretize.NewBreakpoints(breaks)
	if err != nil {
		return nil, err
	}
	inner, err := scheme.Apply(values, alphabet.Letters(scheme.Levels()))
	if err != nil {
		return nil, err
	}
	return &Series{inner: inner}, nil
}

// Len returns the series length n.
func (s *Series) Len() int { return s.inner.Len() }

// Alphabet returns the symbols in level/index order.
func (s *Series) Alphabet() []string { return s.inner.Alphabet().Symbols() }

// String renders the series by concatenating its symbols.
func (s *Series) String() string { return s.inner.String() }

// Engine selects how the convolution components are evaluated.
type Engine int

const (
	// EngineAuto picks FFT for long series and Naive for short ones.
	EngineAuto Engine = iota
	// EngineNaive rescans the series per candidate period (reference).
	EngineNaive
	// EngineBitset uses word-parallel AND/shift over the mapped vector.
	EngineBitset
	// EngineFFT is the paper's algorithm: per-symbol FFT autocorrelation
	// plus on-demand phase resolution.
	EngineFFT
)

// String returns the engine's name as the query language spells it.
func (e Engine) String() string {
	switch e {
	case EngineNaive:
		return query.EngineNaive
	case EngineBitset:
		return query.EngineBitset
	case EngineFFT:
		return query.EngineFFT
	}
	return query.EngineAuto
}

func (e Engine) internal() core.Engine {
	switch e {
	case EngineNaive:
		return core.EngineNaive
	case EngineBitset:
		return core.EngineBitset
	case EngineFFT:
		return core.EngineFFT
	}
	return core.EngineAuto
}

// Options configure Mine.
type Options struct {
	// Threshold is the periodicity threshold ψ ∈ (0,1]: the minimum
	// confidence for a symbol periodicity and the minimum support for a
	// pattern. Required.
	Threshold float64
	// MinPeriod and MaxPeriod bound the candidate periods; defaults 1 and
	// n/2.
	MinPeriod int
	MaxPeriod int
	// Engine selects the evaluation strategy.
	Engine Engine
	// MaxPatternPeriod caps the periods for which multi-symbol patterns are
	// enumerated (default 128; negative disables multi-symbol mining).
	MaxPatternPeriod int
	// MaxPatterns caps the number of emitted multi-symbol patterns
	// (default 10000).
	MaxPatterns int
	// MaximalOnly drops every multi-symbol pattern whose fixed symbols are
	// a strict subset of another reported pattern of the same period.
	MaximalOnly bool
	// MinPairs requires at least this many consecutive projection slots
	// behind a periodicity (default 1, the paper's semantics). With the
	// default, a single recurrence at a barely-fitting period counts as
	// confidence 1; raising MinPairs demands statistical mass and greatly
	// reduces both output noise and work at large periods.
	MinPairs int
}

func (o Options) internal() core.Options {
	return core.Options{
		Threshold:        o.Threshold,
		MinPeriod:        o.MinPeriod,
		MaxPeriod:        o.MaxPeriod,
		Engine:           o.Engine.internal(),
		MaxPatternPeriod: o.MaxPatternPeriod,
		MaxPatterns:      o.MaxPatterns,
		MinPairs:         o.MinPairs,
	}
}

// Periodicity states that Symbol recurs every Period positions at offset
// Position, with the given confidence (the fraction of consecutive
// projection slots at which it held; Definition 1 of the paper).
type Periodicity struct {
	Symbol   string
	Period   int
	Position int
	// Matches is F2: the consecutive projection pairs at which the symbol
	// held; Pairs is the number of such pair slots (the denominator).
	Matches    int
	Pairs      int
	Confidence float64
}

// Pattern is a periodic pattern of length Period. Text renders it with '*'
// don't-cares (e.g. "ab*"); Support estimates the fraction of period
// occurrences at which it held.
type Pattern struct {
	Period  int
	Text    string
	Support float64
}

// Result is the output of Mine.
type Result struct {
	// Periods lists the distinct detected period values, ascending.
	Periods []int
	// Periodicities lists every detected symbol periodicity.
	Periodicities []Periodicity
	// SingleSymbolPatterns are the Definition-2 patterns, one per
	// periodicity.
	SingleSymbolPatterns []Pattern
	// Patterns are multi-symbol candidate patterns with support ≥ ψ.
	Patterns []Pattern
	// Truncated reports that MaxPatterns stopped pattern enumeration early.
	Truncated bool
}

// Mine runs the obscure-periodic-pattern miner over s.
func Mine(s *Series, opt Options) (*Result, error) {
	res, err := core.Mine(s.inner, opt.internal())
	if err != nil {
		return nil, err
	}
	if opt.MaximalOnly {
		res.Patterns = core.FilterMaximal(res.Patterns)
	}
	return convertResult(s, res), nil
}

func convertResult(s *Series, res *core.Result) *Result {
	out := &Result{Periods: res.Periods, Truncated: res.PatternsTruncated}
	alpha := s.inner.Alphabet()
	for _, sp := range res.Periodicities {
		out.Periodicities = append(out.Periodicities, Periodicity{
			Symbol:     alpha.Symbol(sp.Symbol),
			Period:     sp.Period,
			Position:   sp.Position,
			Matches:    sp.F2,
			Pairs:      sp.Pairs,
			Confidence: sp.Confidence,
		})
	}
	for _, pt := range res.SingleSymbol {
		out.SingleSymbolPatterns = append(out.SingleSymbolPatterns, Pattern{
			Period: pt.Period, Text: pt.Render(alpha), Support: pt.Support,
		})
	}
	for _, pt := range res.Patterns {
		out.Patterns = append(out.Patterns, Pattern{
			Period: pt.Period, Text: pt.Render(alpha), Support: pt.Support,
		})
	}
	return out
}

// CandidatePeriods runs only the O(σ n log n) one-pass detection phase and
// returns the period values at which some symbol could be periodic with
// confidence ≥ threshold. maxPeriod 0 means n/2.
func CandidatePeriods(s *Series, threshold float64, maxPeriod int) ([]int, error) {
	cands, err := core.DetectCandidates(s.inner, threshold, maxPeriod)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.Period
	}
	return out, nil
}

// PeriodConfidence returns the minimum threshold at which period p would be
// detected in s: the maximum confidence over all symbols and positions.
func PeriodConfidence(s *Series, p int) float64 {
	return core.PeriodConfidence(s.inner, p)
}

// Stream ingests a symbol stream one element at a time — the single pass the
// paper requires — and mines the stream seen so far on Finish.
type Stream struct {
	inner *core.StreamMiner
	wrap  *Series
}

// NewStream returns a stream miner over the given alphabet (symbol order
// fixes level order).
func NewStream(symbols ...string) (*Stream, error) {
	alpha, err := alphabet.New(symbols...)
	if err != nil {
		return nil, err
	}
	return &Stream{inner: core.NewStreamMiner(alpha)}, nil
}

// Append ingests the next symbol.
func (st *Stream) Append(symbol string) error { return st.inner.Append(symbol) }

// Len returns the number of symbols ingested.
func (st *Stream) Len() int { return st.inner.Len() }

// Finish mines the stream ingested so far.
func (st *Stream) Finish(opt Options) (*Result, error) {
	res, err := st.inner.Finish(opt.internal())
	if err != nil {
		return nil, err
	}
	return convertResult(&Series{inner: st.inner.Series()}, res), nil
}
